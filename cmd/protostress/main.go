// Command protostress hammers the coherence protocol with seeded
// adversarial workloads across a randomized grid of machine
// configurations — scheme × processor count × clustering × replacement
// policy × tiny-directory geometry — with the runtime invariant checker
// on for every run. Tiny sparse directories force constant recalls;
// short reference streams over a small block pool maximize ownership
// migration and gate contention. Any invariant violation fails the
// command and prints the trial's seed and an exact replay line.
//
// With -fault the command becomes a self-test of the checker: it injects
// the named protocol mutation and exits zero only if at least one trial
// catches it.
//
// With -faults the mesh fault-injection layer runs under every trial: a
// fixed spec (see mesh.ParseFaults) applies one fault mix to all trials,
// while the literal "campaign" draws a different seeded mix per trial —
// drop/dup/delay/outage rates sampled from the trial rng — and the
// recovery machinery must still complete every transaction with zero
// violations. With -wedge the command becomes a self-test of the liveness
// watchdog: every message is dropped and the retry budget cut, so it
// exits zero only if every trial aborts with the watchdog's diagnostic
// dump.
//
//	protostress                        # 64 clean trials, all cores
//	protostress -trials 8 -seed 42     # quick bounded smoke
//	protostress -fault drop-inval      # the mutation must be caught
//	protostress -trials 50 -faults campaign  # seeded fault-mix sweep
//	protostress -trials 2 -wedge       # the watchdog must trip
//	protostress -trials 1 -seed 7 -v   # replay one trial, verbose
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"dircoh/internal/cache"
	"dircoh/internal/check"
	"dircoh/internal/cli"
	"dircoh/internal/machine"
	"dircoh/internal/mesh"
	"dircoh/internal/replay"
	"dircoh/internal/rng"
	"dircoh/internal/runner"
	"dircoh/internal/sim"
	"dircoh/internal/sparse"
	"dircoh/internal/tango"
)

const tool = "protostress"

// options is everything one stress campaign needs; tests drive
// runTrials with a literal instead of flags.
type options struct {
	trials   int
	seed     int64
	procs    []int
	refs     int
	blocks   int
	fault    machine.Fault
	faults   string // "", a mesh.ParseFaults spec, or "campaign"
	wedge    bool
	check    bool // run the invariant checker (forces the serial engine)
	shards   int  // sharded machine core width; effective only with check off
	parallel int
	verbose  bool
}

// seedFor derives trial i's seed from the campaign seed: a single-trial
// campaign runs the seed exactly (so printed replay lines reproduce),
// while multi-trial campaigns decorrelate the trials with a splitmix64
// mix.
func seedFor(campaign int64, i, trials int) int64 {
	if trials == 1 {
		return campaign
	}
	return rng.Mix(campaign, int64(i))
}

// schemeNames mirrors the roster in machine's scheme factories; the
// trial rng indexes into it so a replayed seed picks the same scheme.
var schemeNames = []string{"full", "cv", "b", "nb", "x", "tl"}

var schemes = []machine.SchemeFactory{
	machine.FullVec, machine.CoarseVec2, machine.Broadcast,
	machine.NoBroadcast, machine.SupersetX, machine.TwoLevel,
}

var policies = []sparse.ReplacePolicy{sparse.LRU, sparse.Random, sparse.LRA}
var policyNames = []string{"lru", "rand", "lra"}

// trial is one randomized configuration plus its outcome.
type trial struct {
	id       int
	seed     int64
	desc     string
	err      error
	caught   []check.Violation
	cohErr   error
	execTime uint64
}

// failed reports whether the trial found anything wrong — a run error,
// an invariant violation, or a quiescence-sweep failure.
func (t *trial) failed() bool {
	return t.err != nil || len(t.caught) > 0 || t.cohErr != nil
}

// stuck reports whether the trial was aborted by the liveness watchdog
// (or the undeliverable-message sweep) with a diagnostic dump — the
// outcome -wedge demands from every trial.
func (t *trial) stuck() bool {
	var se *machine.StuckError
	return errors.As(t.err, &se) && se.Dump != ""
}

// stress builds the adversarial workload: per-proc streams mixing reads,
// writes, lock-protected writes and a closing barrier over a small block
// pool. Identical in spirit to the machine package's checker tests, but
// parameterized by the trial rng so every trial stresses a different
// sharing pattern.
func stress(rng *rand.Rand, procs, refs, blocks int, sync bool) *tango.Workload {
	addr := func(b int64) int64 { return b * 16 }
	streams := make([][]tango.Ref, procs)
	for p := range streams {
		var b tango.Builder
		for i := 0; i < refs; i++ {
			blk := int64(rng.Intn(blocks))
			switch rng.Intn(12) {
			case 0, 1, 2, 3:
				b.Write(addr(blk))
			case 4:
				if sync {
					lock := addr(int64(blocks) + int64(rng.Intn(4)))
					b.Lock(lock)
					b.Write(addr(blk))
					b.Unlock(lock)
				} else {
					b.Write(addr(blk))
				}
			default:
				b.Read(addr(blk))
			}
		}
		if sync {
			b.Barrier(addr(int64(blocks) + 8))
		}
		streams[p] = b.Refs()
	}
	return &tango.Workload{Name: "stress", Streams: streams}
}

// drawFaults samples one per-trial fault mix for "-faults campaign":
// drop/dup/delay/outage rates spanning none to aggressive, re-drawn until
// at least one dimension is live.
func drawFaults(rng *rand.Rand) mesh.FaultConfig {
	rates := []float64{0, 1e-4, 1e-3, 1e-2}
	delayPs := []float64{0, 0.01, 0.05, 0.2}
	delayMax := []sim.Time{8, 32, 128}
	outPs := []float64{0, 0.02, 0.1}
	outLens := []sim.Time{64, 256}
	for {
		fc := mesh.FaultConfig{
			Drop:   rates[rng.Intn(len(rates))],
			Dup:    rates[rng.Intn(len(rates))],
			DelayP: delayPs[rng.Intn(len(delayPs))],
		}
		if fc.DelayP > 0 {
			fc.DelayMax = delayMax[rng.Intn(len(delayMax))]
		}
		if p := outPs[rng.Intn(len(outPs))]; p > 0 {
			fc.OutageP = p
			fc.OutageLen = outLens[rng.Intn(len(outLens))]
			fc.OutageEvery = 2048
		}
		if fc.Enabled() {
			return fc
		}
	}
}

// runTrial derives one configuration from the trial seed, runs it with
// the checker on, and records everything the checker flagged.
func runTrial(id int, seed int64, o options) trial {
	rng := rand.New(rand.NewSource(seed))
	t := trial{id: id, seed: seed}

	si := rng.Intn(len(schemes))
	procs := o.procs[rng.Intn(len(o.procs))]
	ppc := 1
	if procs%2 == 0 && rng.Intn(2) == 1 {
		ppc = 2
	}
	sync := rng.Intn(3) > 0

	cfg := machine.Config{
		Procs:           procs,
		ProcsPerCluster: ppc,
		Block:           16,
		Cache:           cache.Config{L1Size: 256, L1Assoc: 1, L2Size: 1024, L2Assoc: 2, Block: 16},
		Scheme:          schemes[si],
		Timing:          machine.DefaultTiming(),
		Seed:            seed,
		Check:           o.check,
		Shards:          o.shards,
		Fault:           o.fault,
	}
	dir := "fullmap"
	switch rng.Intn(4) {
	case 0: // full map
	case 1, 2: // tiny sparse directory: constant replacement recalls
		pi := rng.Intn(len(policies))
		cfg.Sparse = machine.SparseConfig{
			Entries: 4 << rng.Intn(3),
			Assoc:   1 << rng.Intn(3),
			Policy:  policies[pi],
		}
		dir = fmt.Sprintf("sparse%d/a%d/%s", cfg.Sparse.Entries, cfg.Sparse.Assoc, policyNames[pi])
	case 3: // two-level overflow directory
		cfg.Overflow = &machine.OverflowDirConfig{Ptrs: 1, WideEntries: 4, Assoc: 2}
		dir = "overflow"
	}
	t.desc = fmt.Sprintf("scheme=%s procs=%d ppc=%d dir=%s sync=%v",
		schemeNames[si], procs, ppc, dir, sync)

	switch {
	case o.wedge:
		// Unrecoverable: every message dropped, tiny retry budget. The
		// liveness watchdog must abort with its diagnostic dump.
		cfg.Mesh.Faults = mesh.FaultConfig{Drop: 1}
		cfg.Retry = machine.RetryConfig{MaxRetries: 2}
		cfg.StuckBudget = 1 << 16
	case o.faults == "campaign":
		cfg.Mesh.Faults = drawFaults(rng)
	case o.faults != "":
		fc, err := mesh.ParseFaults(o.faults)
		if err != nil {
			t.err = err
			return t
		}
		cfg.Mesh.Faults = fc
	}
	if cfg.Mesh.Faults.Enabled() {
		t.desc += " faults=" + cfg.Mesh.Faults.String()
	}

	w := stress(rng, procs, o.refs, o.blocks, sync)
	m, err := machine.New(cfg)
	if err != nil {
		t.err = err
		return t
	}
	r, err := m.Run(w)
	if err != nil {
		t.err = err
		return t
	}
	t.execTime = r.ExecTime
	t.caught = m.Violations()
	t.cohErr = m.CheckCoherence()
	return t
}

// runTrials executes the campaign and returns the trials plus whether
// anything was caught. It is the testable core of the command.
func runTrials(o options) ([]trial, bool) {
	pool := runner.New(o.parallel)
	trials := runner.Collect(pool, o.trials, func(i int) trial {
		return runTrial(i, seedFor(o.seed, i, o.trials), o)
	})
	caught := false
	for i := range trials {
		if trials[i].failed() {
			caught = true
		}
	}
	return trials, caught
}

func report(w *os.File, trials []trial, o options) {
	for i := range trials {
		t := &trials[i]
		if o.verbose || t.failed() {
			fmt.Fprintf(w, "trial %3d seed=%-12d %s  exec=%d cycles\n", t.id, t.seed, t.desc, t.execTime)
		}
		if t.err != nil {
			fmt.Fprintf(w, "  run error: %v\n", t.err)
		}
		for _, v := range t.caught {
			fmt.Fprintf(w, "  violation: %s\n", v)
		}
		if t.cohErr != nil {
			fmt.Fprintf(w, "  quiescence sweep: %v\n", t.cohErr)
		}
		if t.failed() {
			fmt.Fprintf(w, "  replay: %s\n", replay.Line{
				Trials: 1, Seed: t.seed, Procs: o.procs, Refs: o.refs, Blocks: o.blocks,
				Fault: o.fault.String(), Faults: o.faults, Wedge: o.wedge,
				NoCheck: !o.check, Shards: o.shards, Verbose: true,
			})
		}
	}
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -procs entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		trialsN   = flag.Int("trials", 64, "randomized configurations to run")
		seed      = flag.Int64("seed", 1, "campaign seed; trial seeds derive from it (-trials 1 runs it exactly, for replays)")
		procsStr  = flag.String("procs", "4,6,8", "comma list of processor counts to draw from")
		refs      = flag.Int("refs", 300, "shared references per processor")
		blocks    = flag.Int("blocks", 24, "shared data blocks in the contended pool")
		faultStr  = flag.String("fault", "none", "inject a protocol mutation (none, drop-inval, skip-recall); the checker must catch it")
		faultsStr = flag.String("faults", "", "inject network faults under every trial: a mesh.ParseFaults spec, or 'campaign' for a seeded per-trial mix; recovery must keep every trial clean")
		wedge     = flag.Bool("wedge", false, "watchdog self-test: drop every message with a tiny retry budget; every trial must abort with a diagnostic dump")
		checkOn   = flag.Bool("check", true, "run the invariant checker on every trial (the checker forces the serial engine; disable it to exercise -shards)")
		shards    = flag.Int("shards", 0, "run each trial on N parallel event-wheel shards (serial-vs-sharded differential runs use -check=false -shards N)")
		parallel  = flag.Int("parallel", 0, "concurrent trials (0 = one per core)")
		verbose   = flag.Bool("v", false, "print every trial, not just failures")
	)
	flag.Parse()

	fault, err := machine.ParseFault(*faultStr)
	if err != nil {
		cli.Usagef(tool, "%v", err)
	}
	procs, err := parseProcs(*procsStr)
	if err != nil {
		cli.Usagef(tool, "%v", err)
	}
	if *trialsN <= 0 || *refs <= 0 || *blocks <= 0 {
		cli.Usagef(tool, "-trials, -refs and -blocks must be positive")
	}
	if *faultsStr != "" && *faultsStr != "campaign" {
		if _, err := mesh.ParseFaults(*faultsStr); err != nil {
			cli.Usagef(tool, "-faults: %v", err)
		}
	}
	if *wedge && (*faultsStr != "" || fault != machine.FaultNone) {
		cli.Usagef(tool, "-wedge is exclusive with -fault and -faults")
	}
	if !*checkOn && fault != machine.FaultNone {
		cli.Usagef(tool, "-fault self-tests need the checker; drop -check=false")
	}
	if *shards > 0 && *checkOn {
		fmt.Fprintf(os.Stderr, "%s: note: -shards %d has no effect while the checker is on (serial fallback); add -check=false\n", tool, *shards)
	}

	o := options{
		trials: *trialsN, seed: *seed, procs: procs, refs: *refs,
		blocks: *blocks, fault: fault, faults: *faultsStr, wedge: *wedge,
		check: *checkOn, shards: *shards,
		parallel: *parallel, verbose: *verbose,
	}
	trials, caught := runTrials(o)
	report(os.Stdout, trials, o)

	nviol := 0
	for i := range trials {
		nviol += len(trials[i].caught)
	}
	fmt.Printf("%d trials, %d with findings, %d violations total, fault=%s\n",
		len(trials), countFailed(trials), nviol, fault)

	if o.wedge {
		// Self-test mode: the liveness watchdog must catch every wedged
		// trial and produce its diagnostic dump.
		for i := range trials {
			if !trials[i].stuck() {
				cli.Fatalf(tool, "trial %d did not trip the liveness watchdog (err=%v)", trials[i].id, trials[i].err)
			}
		}
		fmt.Printf("watchdog caught all %d wedged trials with diagnostic dumps\n", len(trials))
		return
	}
	if fault == machine.FaultNone {
		if caught {
			cli.Fatalf(tool, "protocol invariant violations on an unmutated protocol")
		}
		if o.faults != "" {
			fmt.Printf("clean: every transaction recovered under fault injection (-faults %s)\n", o.faults)
			return
		}
		fmt.Println("clean: no invariant violations")
		return
	}
	// Self-test mode: the injected mutation must be detected.
	if !caught {
		cli.Fatalf(tool, "injected fault %s went undetected", fault)
	}
	fmt.Printf("checker caught injected fault %s\n", fault)
}

func countFailed(trials []trial) int {
	n := 0
	for i := range trials {
		if trials[i].failed() {
			n++
		}
	}
	return n
}
