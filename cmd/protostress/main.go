// Command protostress hammers the coherence protocol with seeded
// adversarial workloads across a randomized grid of machine
// configurations — scheme × processor count × clustering × replacement
// policy × tiny-directory geometry — with the runtime invariant checker
// on for every run. Tiny sparse directories force constant recalls;
// short reference streams over a small block pool maximize ownership
// migration and gate contention. Any invariant violation fails the
// command and prints the trial's seed and an exact replay line.
//
// With -fault the command becomes a self-test of the checker: it injects
// the named protocol mutation and exits zero only if at least one trial
// catches it.
//
// With -faults the mesh fault-injection layer runs under every trial: a
// fixed spec (see mesh.ParseFaults) applies one fault mix to all trials,
// while the literal "campaign" draws a different seeded mix per trial —
// drop/dup/delay/outage rates sampled from the trial rng — and the
// recovery machinery must still complete every transaction with zero
// violations. With -wedge the command becomes a self-test of the liveness
// watchdog: every message is dropped and the retry budget cut, so it
// exits zero only if every trial aborts with the watchdog's diagnostic
// dump.
//
// The campaign machinery itself lives in internal/stress so the campaign
// service (cmd/simd) can journal and resume stress runs trial by trial;
// this command is flag parsing plus the self-test exit policy.
//
//	protostress                        # 64 clean trials, all cores
//	protostress -trials 8 -seed 42     # quick bounded smoke
//	protostress -fault drop-inval      # the mutation must be caught
//	protostress -trials 50 -faults campaign  # seeded fault-mix sweep
//	protostress -trials 2 -wedge       # the watchdog must trip
//	protostress -trials 1 -seed 7 -v   # replay one trial, verbose
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dircoh/internal/cli"
	"dircoh/internal/machine"
	"dircoh/internal/mesh"
	"dircoh/internal/stress"
)

const tool = "protostress"

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -procs entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		trialsN   = flag.Int("trials", 64, "randomized configurations to run")
		seed      = flag.Int64("seed", 1, "campaign seed; trial seeds derive from it (-trials 1 runs it exactly, for replays)")
		procsStr  = flag.String("procs", "4,6,8", "comma list of processor counts to draw from")
		refs      = flag.Int("refs", 300, "shared references per processor")
		blocks    = flag.Int("blocks", 24, "shared data blocks in the contended pool")
		faultStr  = flag.String("fault", "none", "inject a protocol mutation (none, drop-inval, skip-recall); the checker must catch it")
		faultsStr = flag.String("faults", "", "inject network faults under every trial: a mesh.ParseFaults spec, or 'campaign' for a seeded per-trial mix; recovery must keep every trial clean")
		wedge     = flag.Bool("wedge", false, "watchdog self-test: drop every message with a tiny retry budget; every trial must abort with a diagnostic dump")
		checkOn   = flag.Bool("check", true, "run the invariant checker on every trial (the checker forces the serial engine; disable it to exercise -shards)")
		shards    = flag.Int("shards", 0, "run each trial on N parallel event-wheel shards (serial-vs-sharded differential runs use -check=false -shards N)")
		parallel  = flag.Int("parallel", 0, "concurrent trials (0 = one per core)")
		verbose   = flag.Bool("v", false, "print every trial, not just failures")
	)
	flag.Parse()

	fault, err := machine.ParseFault(*faultStr)
	if err != nil {
		cli.Usagef(tool, "%v", err)
	}
	procs, err := parseProcs(*procsStr)
	if err != nil {
		cli.Usagef(tool, "%v", err)
	}
	if *trialsN <= 0 || *refs <= 0 || *blocks <= 0 {
		cli.Usagef(tool, "-trials, -refs and -blocks must be positive")
	}
	if *faultsStr != "" && *faultsStr != "campaign" {
		if _, err := mesh.ParseFaults(*faultsStr); err != nil {
			cli.Usagef(tool, "-faults: %v", err)
		}
	}
	if *wedge && (*faultsStr != "" || fault != machine.FaultNone) {
		cli.Usagef(tool, "-wedge is exclusive with -fault and -faults")
	}
	if !*checkOn && fault != machine.FaultNone {
		cli.Usagef(tool, "-fault self-tests need the checker; drop -check=false")
	}
	if *shards > 0 && *checkOn {
		fmt.Fprintf(os.Stderr, "%s: note: -shards %d has no effect while the checker is on (serial fallback); add -check=false\n", tool, *shards)
	}

	o := stress.Options{
		Trials: *trialsN, Seed: *seed, Procs: procs, Refs: *refs,
		Blocks: *blocks, Fault: fault, Faults: *faultsStr, Wedge: *wedge,
		Check: *checkOn, Shards: *shards,
		Parallel: *parallel, Verbose: *verbose,
	}
	trials, caught := stress.RunTrials(o)
	stress.Report(os.Stdout, trials, o)

	nviol := 0
	for i := range trials {
		nviol += len(trials[i].Caught)
	}
	fmt.Printf("%d trials, %d with findings, %d violations total, fault=%s\n",
		len(trials), stress.CountFailed(trials), nviol, fault)

	if o.Wedge {
		// Self-test mode: the liveness watchdog must catch every wedged
		// trial and produce its diagnostic dump.
		for i := range trials {
			if !trials[i].Stuck() {
				cli.Fatalf(tool, "trial %d did not trip the liveness watchdog (err=%v)", trials[i].ID, trials[i].Err)
			}
		}
		fmt.Printf("watchdog caught all %d wedged trials with diagnostic dumps\n", len(trials))
		return
	}
	if fault == machine.FaultNone {
		if caught {
			cli.Fatalf(tool, "protocol invariant violations on an unmutated protocol")
		}
		if o.Faults != "" {
			fmt.Printf("clean: every transaction recovered under fault injection (-faults %s)\n", o.Faults)
			return
		}
		fmt.Println("clean: no invariant violations")
		return
	}
	// Self-test mode: the injected mutation must be detected.
	if !caught {
		cli.Fatalf(tool, "injected fault %s went undetected", fault)
	}
	fmt.Printf("checker caught injected fault %s\n", fault)
}
