package main

import (
	"errors"
	"strings"
	"testing"

	"dircoh/internal/machine"
)

func smallOpts() options {
	return options{trials: 6, seed: 21, procs: []int{4, 6}, refs: 150, blocks: 16, check: true}
}

// TestCleanCampaign: an unmutated protocol must survive the stress grid
// with zero findings.
func TestCleanCampaign(t *testing.T) {
	trials, caught := runTrials(smallOpts())
	if caught {
		for _, tr := range trials {
			if tr.failed() {
				t.Errorf("trial %d (%s): err=%v violations=%v coherence=%v",
					tr.id, tr.desc, tr.err, tr.caught, tr.cohErr)
			}
		}
		t.Fatal("clean protocol produced findings")
	}
}

// TestFaultsCaught: each injected mutation must be detected by at least
// one trial — the harness's self-test obligation.
func TestFaultsCaught(t *testing.T) {
	for _, f := range []machine.Fault{machine.FaultDropInval, machine.FaultSkipRecallInval} {
		o := smallOpts()
		o.trials = 16
		o.fault = f
		_, caught := runTrials(o)
		if !caught {
			t.Errorf("fault %s went undetected in %d trials", f, o.trials)
		}
	}
}

// TestReplayDeterminism: rerunning a single trial with its printed seed
// reproduces the identical configuration and execution time.
func TestReplayDeterminism(t *testing.T) {
	o := smallOpts()
	first := runTrial(3, seedFor(o.seed, 3, o.trials), o)
	replay := runTrial(0, first.seed, o)
	if replay.desc != first.desc || replay.execTime != first.execTime {
		t.Fatalf("replay diverged: %q exec=%d vs %q exec=%d",
			first.desc, first.execTime, replay.desc, replay.execTime)
	}
}

// TestFaultCampaignClean: under randomized per-trial network fault mixes
// the recovery machinery must still complete every trial with zero
// invariant violations.
func TestFaultCampaignClean(t *testing.T) {
	o := smallOpts()
	o.trials = 8
	o.faults = "campaign"
	trials, caught := runTrials(o)
	if caught {
		for _, tr := range trials {
			if tr.failed() {
				t.Errorf("trial %d (%s): err=%v violations=%v coherence=%v",
					tr.id, tr.desc, tr.err, tr.caught, tr.cohErr)
			}
		}
		t.Fatal("fault campaign produced findings")
	}
	for _, tr := range trials {
		if tr.desc == "" || !strings.Contains(tr.desc, "faults=") {
			t.Fatalf("trial %d desc lacks fault spec: %q", tr.id, tr.desc)
		}
	}
}

// TestFaultCampaignReplay: a fault-campaign trial replayed by its seed
// draws the identical fault mix and execution time.
func TestFaultCampaignReplay(t *testing.T) {
	o := smallOpts()
	o.trials = 4
	o.faults = "campaign"
	first := runTrial(2, seedFor(o.seed, 2, o.trials), o)
	o.trials = 1
	replay := runTrial(0, first.seed, o)
	if replay.desc != first.desc || replay.execTime != first.execTime {
		t.Fatalf("replay diverged: %q exec=%d vs %q exec=%d",
			first.desc, first.execTime, replay.desc, replay.execTime)
	}
}

// TestFaultCampaignRegressions replays the exact campaign seeds that once
// produced invariant violations — stale owner reads overtaken by a
// sibling's re-acquisition, write fan-out invalidations outliving a
// recall, and SharingWBs stale after an ownership bounce through a third
// cluster. Each must now run clean.
func TestFaultCampaignRegressions(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size campaign replays")
	}
	seeds := []int64{
		-4627371582388691390, -8194201985949301919, -1806040232980855993,
		-5937789379458223177, 4026922237021176607, 7232921342214546856,
		8478203652574459302, -4260178708525722724, 6942937328743600961,
		-2631691874271825767,
	}
	o := options{trials: 1, seed: 0, procs: []int{4, 6, 8}, refs: 300,
		blocks: 24, faults: "campaign", check: true}
	for _, seed := range seeds {
		tr := runTrial(0, seed, o)
		if tr.failed() {
			t.Errorf("seed %d (%s): err=%v violations=%v coherence=%v",
				seed, tr.desc, tr.err, tr.caught, tr.cohErr)
		}
	}
}

// TestShardedDifferential: the same seeded stress campaign run on the
// sharded machine core at widths 1, 2 and 4 must reproduce identical
// configurations and execution times trial for trial (the checker is off:
// it forces the serial engine).
func TestShardedDifferential(t *testing.T) {
	base := smallOpts()
	base.check = false
	base.shards = 1
	want, caught := runTrials(base)
	if caught {
		t.Fatal("clean protocol produced findings at -shards 1")
	}
	for _, shards := range []int{2, 4} {
		o := base
		o.shards = shards
		got, caught := runTrials(o)
		if caught {
			t.Fatalf("clean protocol produced findings at -shards %d", shards)
		}
		for i := range want {
			if got[i].desc != want[i].desc || got[i].execTime != want[i].execTime {
				t.Errorf("trial %d diverged at -shards %d: %q exec=%d vs %q exec=%d",
					i, shards, want[i].desc, want[i].execTime, got[i].desc, got[i].execTime)
			}
		}
	}
}

// TestWedgeTripsWatchdog: with every message dropped and the retry budget
// cut, every trial must abort via *machine.StuckError carrying a
// diagnostic dump.
func TestWedgeTripsWatchdog(t *testing.T) {
	o := smallOpts()
	o.trials = 3
	o.wedge = true
	trials, _ := runTrials(o)
	for _, tr := range trials {
		if !tr.stuck() {
			t.Fatalf("trial %d not stuck: err=%v", tr.id, tr.err)
		}
		var se *machine.StuckError
		errors.As(tr.err, &se)
		if !strings.Contains(se.Dump, "refs remaining") || !strings.Contains(se.Dump, "msg ") {
			t.Fatalf("trial %d dump lacks proc/envelope detail:\n%s", tr.id, se.Dump)
		}
	}
}
