package main

import (
	"testing"

	"dircoh/internal/machine"
)

func smallOpts() options {
	return options{trials: 6, seed: 21, procs: []int{4, 6}, refs: 150, blocks: 16}
}

// TestCleanCampaign: an unmutated protocol must survive the stress grid
// with zero findings.
func TestCleanCampaign(t *testing.T) {
	trials, caught := runTrials(smallOpts())
	if caught {
		for _, tr := range trials {
			if tr.failed() {
				t.Errorf("trial %d (%s): err=%v violations=%v coherence=%v",
					tr.id, tr.desc, tr.err, tr.caught, tr.cohErr)
			}
		}
		t.Fatal("clean protocol produced findings")
	}
}

// TestFaultsCaught: each injected mutation must be detected by at least
// one trial — the harness's self-test obligation.
func TestFaultsCaught(t *testing.T) {
	for _, f := range []machine.Fault{machine.FaultDropInval, machine.FaultSkipRecallInval} {
		o := smallOpts()
		o.trials = 16
		o.fault = f
		_, caught := runTrials(o)
		if !caught {
			t.Errorf("fault %s went undetected in %d trials", f, o.trials)
		}
	}
}

// TestReplayDeterminism: rerunning a single trial with its printed seed
// reproduces the identical configuration and execution time.
func TestReplayDeterminism(t *testing.T) {
	o := smallOpts()
	first := runTrial(3, o.seed, o)
	replay := runTrial(0, first.seed, o)
	if replay.desc != first.desc || replay.execTime != first.execTime {
		t.Fatalf("replay diverged: %q exec=%d vs %q exec=%d",
			first.desc, first.execTime, replay.desc, replay.execTime)
	}
}
