// Command bench records the simulator's performance trajectory: a pinned
// workload matrix (scheme × processor count × application), each cell run
// at a fixed set of machine-core shard widths, measuring wall time,
// cycles simulated per second and heap allocations. Results go to a JSON
// file (BENCH_7.json by default) so successive PRs can diff throughput on
// the same matrix.
//
// Shard width 0 is the legacy serial heap engine — the baseline every
// other width's speedup is computed against. Widths >= 1 run the sharded
// event-wheel core (width 1 isolates the wheel's per-event cost from
// parallelism). Speedups are reported per matrix cell; on a single-CPU
// host the widths > 1 cannot beat width 1, and the recorded host.cpus
// says so.
//
//	bench                   # full matrix, ~2 minutes
//	bench -quick            # one cell, one repetition, for CI
//	bench -o BENCH_7.json   # output path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dircoh/internal/cli"
	"dircoh/internal/exp"
	"dircoh/internal/machine"
	"dircoh/internal/tango"
)

const tool = "bench"

// cell is one point of the pinned matrix.
type cell struct {
	App    string `json:"app"`
	Scheme string `json:"scheme"`
	Procs  int    `json:"procs"`
}

// result is one measured run of a cell at one shard width.
type result struct {
	cell
	Shards       int     `json:"shards"`
	Reps         int     `json:"reps"`
	WallSeconds  float64 `json:"wall_seconds"` // best repetition
	Cycles       uint64  `json:"cycles"`       // simulated cycles (ExecTime)
	CyclesPerSec float64 `json:"cycles_per_sec"`
	AllocObjs    uint64  `json:"alloc_objs"`  // heap objects per run
	AllocBytes   uint64  `json:"alloc_bytes"` // heap bytes per run
}

// speedup summarizes one cell: cycles/sec at each width over the serial
// heap engine (width 0).
type speedup struct {
	cell
	OverSerial map[string]float64 `json:"over_serial"` // width -> cps(width)/cps(0)
}

type report struct {
	Version    int       `json:"version"`
	Tool       string    `json:"tool"`
	Quick      bool      `json:"quick"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	CPUs       int       `json:"cpus"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Widths     []int     `json:"shard_widths"`
	Results    []result  `json:"results"`
	Speedups   []speedup `json:"speedups"`
}

var schemes = []struct {
	name string
	f    machine.SchemeFactory
}{
	{"Dir32", machine.FullVec},
	{"Dir3CV2", machine.CoarseVec2},
}

// matrix returns the pinned cells. The 32-processor figure workloads are
// the paper's own experiment grid; -quick keeps one representative cell.
func matrix(quick bool) []cell {
	if quick {
		return []cell{{App: "LocusRoute", Scheme: "Dir3CV2", Procs: 32}}
	}
	var cells []cell
	for _, app := range []string{"LU", "MP3D", "LocusRoute"} {
		for _, s := range schemes {
			cells = append(cells, cell{App: app, Scheme: s.name, Procs: 32})
		}
	}
	return cells
}

func factory(name string) machine.SchemeFactory {
	for _, s := range schemes {
		if s.name == name {
			return s.f
		}
	}
	cli.Fatalf(tool, "unknown scheme %q", name)
	return nil
}

// measure runs one cell at one width reps times and keeps the best wall
// time; allocations come from the final repetition.
func measure(c cell, w *tango.Workload, shards, reps int) result {
	cfg := machine.DefaultConfig(factory(c.Scheme))
	cfg.Procs = c.Procs
	cfg.Shards = shards
	res := result{cell: c, Shards: shards, Reps: reps}
	for rep := 0; rep < reps; rep++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		m, err := machine.New(cfg)
		if err != nil {
			cli.Fatalf(tool, "%s/%s: %v", c.App, c.Scheme, err)
		}
		if shards > 0 && m.Shards() == 0 {
			cli.Fatalf(tool, "%s/%s: -shards %d fell back to serial: %s", c.App, c.Scheme, shards, m.FallbackReason())
		}
		r, err := m.Run(w)
		if err != nil {
			cli.Fatalf(tool, "%s/%s: %v", c.App, c.Scheme, err)
		}
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		res.Cycles = uint64(r.ExecTime)
		res.AllocObjs = after.Mallocs - before.Mallocs
		res.AllocBytes = after.TotalAlloc - before.TotalAlloc
		if rep == 0 || wall < res.WallSeconds {
			res.WallSeconds = wall
		}
	}
	res.CyclesPerSec = float64(res.Cycles) / res.WallSeconds
	return res
}

func main() {
	var (
		quick = flag.Bool("quick", false, "one cell, one repetition (CI smoke)")
		reps  = flag.Int("reps", 3, "repetitions per point (best wall time wins)")
		out   = flag.String("o", "BENCH_7.json", "output JSON path ('-' for stdout)")
	)
	flag.Parse()
	if *quick {
		*reps = 1
	}
	if *reps <= 0 {
		cli.Usagef(tool, "-reps must be positive")
	}

	widths := []int{0, 1, 2, 4}
	rep := report{
		Version: 1, Tool: tool, Quick: *quick,
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		Widths: widths,
	}

	for _, c := range matrix(*quick) {
		w := exp.Workload(c.App, c.Procs)
		sp := speedup{cell: c, OverSerial: map[string]float64{}}
		var serial float64
		for _, width := range widths {
			r := measure(c, w, width, *reps)
			rep.Results = append(rep.Results, r)
			if width == 0 {
				serial = r.CyclesPerSec
			} else if serial > 0 {
				sp.OverSerial[fmt.Sprintf("%d", width)] = r.CyclesPerSec / serial
			}
			fmt.Fprintf(os.Stderr, "%s %s procs=%d shards=%d: %.2fs wall, %.0f cycles/s, %d allocs\n",
				c.App, c.Scheme, c.Procs, width, r.WallSeconds, r.CyclesPerSec, r.AllocObjs)
		}
		rep.Speedups = append(rep.Speedups, sp)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		cli.Fatalf(tool, "%v", err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		cli.Fatalf(tool, "%v", err)
	}
	fmt.Fprintf(os.Stderr, "%s: wrote %s\n", tool, *out)
}
