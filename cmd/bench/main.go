// Command bench records the simulator's performance trajectory: a pinned
// workload matrix (scheme × processor count × application), each cell run
// at a fixed set of machine-core shard widths, measuring wall time,
// cycles simulated per second, heap allocations and per-entry directory
// bytes — once with observability off and once with event tracing, span
// recording, and queue sampling enabled on discard sinks, so the
// instrumentation's cost is tracked per width alongside raw throughput.
// Results go to a JSON file (BENCH_10.json by default) so successive PRs
// can diff throughput on the same matrix.
//
// Besides the paper's 32-processor figure workloads, the matrix carries
// two 1024-cluster scale-probe cells (full vector and the adaptive
// two-level directory), so throughput and memory at the sizes the compact
// encodings exist for are pinned alongside the small grid.
//
// Shard width 0 is the legacy serial heap engine — the baseline every
// other width's speedup is computed against. Widths >= 1 run the sharded
// event-wheel core (width 1 isolates the wheel's per-event cost from
// parallelism). Speedups are reported per matrix cell; on a single-CPU
// host the widths > 1 cannot beat width 1, and the recorded host.cpus
// says so.
//
// One extra cell benchmarks the campaign service's durability machinery:
// the same pinned stress campaign run volatile (no persistence) and
// durable (fsynced journal appends plus periodic checkpoint compaction),
// reported as jobs/sec each way and the durable/volatile overhead ratio.
//
//	bench                   # full matrix, ~3 minutes
//	bench -quick            # one cell, one repetition, for CI
//	bench -o BENCH_10.json  # output path
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"dircoh/internal/campaign"
	"dircoh/internal/cli"
	"dircoh/internal/core"
	"dircoh/internal/exp"
	"dircoh/internal/machine"
	"dircoh/internal/obs"
	"dircoh/internal/tango"
)

const tool = "bench"

// cell is one point of the pinned matrix.
type cell struct {
	App    string `json:"app"`
	Scheme string `json:"scheme"`
	Procs  int    `json:"procs"`
}

// result is one measured run of a cell at one shard width.
type result struct {
	cell
	Shards       int     `json:"shards"`
	Reps         int     `json:"reps"`
	WallSeconds  float64 `json:"wall_seconds"` // best repetition
	Cycles       uint64  `json:"cycles"`       // simulated cycles (ExecTime)
	CyclesPerSec float64 `json:"cycles_per_sec"`
	AllocObjs    uint64  `json:"alloc_objs"`  // heap objects per run
	AllocBytes   uint64  `json:"alloc_bytes"` // heap bytes per run

	// Per-entry directory cost of the cell's scheme at the cell's size:
	// architectural bits and simulator heap bytes (Result.DirEntryBits /
	// DirEntryBytes).
	DirEntryBits  int `json:"dir_entry_bits"`
	DirEntryBytes int `json:"dir_entry_bytes"`

	// The same cell with tracing, spans, and queue sampling enabled on
	// discard sinks. ObsOverhead is ObsWallSeconds / WallSeconds.
	ObsWallSeconds  float64 `json:"obs_wall_seconds"`
	ObsCyclesPerSec float64 `json:"obs_cycles_per_sec"`
	ObsOverhead     float64 `json:"obs_overhead"`
}

// speedup summarizes one cell: cycles/sec at each width over the serial
// heap engine (width 0).
type speedup struct {
	cell
	OverSerial map[string]float64 `json:"over_serial"` // width -> cps(width)/cps(0)
}

// campaignResult pins the campaign service's durability cost: one fixed
// stress campaign run volatile (Root "", nothing persisted) and durable
// (fsynced journal appends, checkpoint compaction every 2 jobs), best
// wall time of each over the repetitions.
type campaignResult struct {
	Jobs               int     `json:"jobs"`
	Reps               int     `json:"reps"`
	VolatileSeconds    float64 `json:"volatile_seconds"`
	VolatileJobsPerSec float64 `json:"volatile_jobs_per_sec"`
	DurableSeconds     float64 `json:"durable_seconds"`
	DurableJobsPerSec  float64 `json:"durable_jobs_per_sec"`
	CheckpointOverhead float64 `json:"checkpoint_overhead"` // durable / volatile wall
}

type report struct {
	Version    int             `json:"version"`
	Tool       string          `json:"tool"`
	Quick      bool            `json:"quick"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	CPUs       int             `json:"cpus"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Widths     []int           `json:"shard_widths"`
	Results    []result        `json:"results"`
	Speedups   []speedup       `json:"speedups"`
	Campaign   *campaignResult `json:"campaign,omitempty"`
}

var schemes = []struct {
	name string
	f    machine.SchemeFactory
}{
	{"Dir32", machine.FullVec},
	{"Dir3CV2", machine.CoarseVec2},
}

// scaleProbeApp is the synthetic large-machine workload; cells naming it
// run exp.ScaleProbe instead of a paper application.
const scaleProbeApp = "scale-probe"

// matrix returns the pinned cells. The 32-processor figure workloads are
// the paper's own experiment grid; the 1024-cluster scale-probe cells pin
// throughput and directory bytes at large geometry. -quick keeps one
// representative cell.
func matrix(quick bool) []cell {
	if quick {
		return []cell{{App: "LocusRoute", Scheme: "Dir3CV2", Procs: 32}}
	}
	var cells []cell
	for _, app := range []string{"LU", "MP3D", "LocusRoute"} {
		for _, s := range schemes {
			cells = append(cells, cell{App: app, Scheme: s.name, Procs: 32})
		}
	}
	cells = append(cells,
		cell{App: scaleProbeApp, Scheme: "full", Procs: 1024},
		cell{App: scaleProbeApp, Scheme: "tl", Procs: 1024},
	)
	return cells
}

// workload builds the cell's reference stream: a paper application, or
// the scale probe for the large-geometry cells.
func workload(c cell) *tango.Workload {
	if c.App == scaleProbeApp {
		return exp.ScaleProbe(c.Procs, 2)
	}
	return exp.Workload(c.App, c.Procs)
}

// factory resolves a cell's scheme: the pinned 32-processor pair first,
// then any registry spec ("full", "tl", "Dir4R32", ...) so the scale
// cells need no bespoke table.
func factory(name string) machine.SchemeFactory {
	for _, s := range schemes {
		if s.name == name {
			return s.f
		}
	}
	f, err := core.Parse(name)
	if err != nil {
		cli.Fatalf(tool, "unknown scheme %q: %v", name, err)
	}
	return f
}

// runOnce executes one cell once, with or without observability, and
// returns the wall seconds, the run result, and allocation deltas.
func runOnce(c cell, w *tango.Workload, shards int, withObs bool) (wall float64, res *machine.Result, objs, bytes uint64) {
	cfg := machine.DefaultConfig(factory(c.Scheme))
	cfg.Procs = c.Procs
	cfg.Shards = shards
	if withObs {
		cfg.Trace = obs.NewTracer(obs.Discard, 0)
		cfg.Spans = obs.NewSpanRecorder(obs.DiscardSpans, 0)
		cfg.SampleEvery = 64
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	m, err := machine.New(cfg)
	if err != nil {
		cli.Fatalf(tool, "%s/%s: %v", c.App, c.Scheme, err)
	}
	if shards > 0 && m.Shards() == 0 {
		cli.Fatalf(tool, "%s/%s: -shards %d fell back to serial: %s", c.App, c.Scheme, shards, m.FallbackReason())
	}
	r, err := m.Run(w)
	if err != nil {
		cli.Fatalf(tool, "%s/%s: %v", c.App, c.Scheme, err)
	}
	wall = time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	return wall, r, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// measure runs one cell at one width reps times, obs off and on, and
// keeps each mode's best wall time; allocations come from the final
// obs-off repetition.
func measure(c cell, w *tango.Workload, shards, reps int) result {
	res := result{cell: c, Shards: shards, Reps: reps}
	for rep := 0; rep < reps; rep++ {
		wall, r, objs, bytes := runOnce(c, w, shards, false)
		res.Cycles = uint64(r.ExecTime)
		res.DirEntryBits = r.DirEntryBits
		res.DirEntryBytes = r.DirEntryBytes
		res.AllocObjs = objs
		res.AllocBytes = bytes
		if rep == 0 || wall < res.WallSeconds {
			res.WallSeconds = wall
		}
		obsWall, _, _, _ := runOnce(c, w, shards, true)
		if rep == 0 || obsWall < res.ObsWallSeconds {
			res.ObsWallSeconds = obsWall
		}
	}
	res.CyclesPerSec = float64(res.Cycles) / res.WallSeconds
	res.ObsCyclesPerSec = float64(res.Cycles) / res.ObsWallSeconds
	res.ObsOverhead = res.ObsWallSeconds / res.WallSeconds
	return res
}

// campaignSpec is the pinned campaign cell: 8 stress trials, one job
// each, serial so journal and checkpoint I/O sits on the critical path.
func campaignSpec() campaign.Spec {
	return campaign.Spec{
		Kind: "stress", Name: "bench",
		Stress: &campaign.StressSpec{Trials: 8, Seed: 11, Procs: []int{4}, Refs: 400, Blocks: 16},
	}
}

// campaignWall runs the pinned campaign once under root ("" = volatile)
// and returns the submit-to-done wall seconds.
func campaignWall(root string) float64 {
	m, err := campaign.Open(campaign.Config{Root: root, CheckpointEvery: 2, Parallel: 1})
	if err != nil {
		cli.Fatalf(tool, "campaign: %v", err)
	}
	defer m.Close()
	start := time.Now()
	c, err := m.Submit("bench", campaignSpec())
	if err != nil {
		cli.Fatalf(tool, "campaign: %v", err)
	}
	for {
		st, ok := m.Get(c.ID)
		if !ok {
			cli.Fatalf(tool, "campaign %s vanished", c.ID)
		}
		switch st.State {
		case campaign.StateDone:
			return time.Since(start).Seconds()
		case campaign.StateFailed:
			cli.Fatalf(tool, "campaign failed: %+v", st.Failures)
		}
		time.Sleep(time.Millisecond)
	}
}

// measureCampaign times the pinned campaign volatile and durable, best
// wall of reps each.
func measureCampaign(reps int) campaignResult {
	scratch, err := os.MkdirTemp("", "bench-campaign")
	if err != nil {
		cli.Fatalf(tool, "campaign: %v", err)
	}
	defer os.RemoveAll(scratch)
	spec := campaignSpec()
	cr := campaignResult{Jobs: spec.Jobs(), Reps: reps}
	for rep := 0; rep < reps; rep++ {
		if wall := campaignWall(""); rep == 0 || wall < cr.VolatileSeconds {
			cr.VolatileSeconds = wall
		}
		dir := filepath.Join(scratch, fmt.Sprintf("r%d", rep))
		if wall := campaignWall(dir); rep == 0 || wall < cr.DurableSeconds {
			cr.DurableSeconds = wall
		}
	}
	cr.VolatileJobsPerSec = float64(cr.Jobs) / cr.VolatileSeconds
	cr.DurableJobsPerSec = float64(cr.Jobs) / cr.DurableSeconds
	cr.CheckpointOverhead = cr.DurableSeconds / cr.VolatileSeconds
	return cr
}

func main() {
	var (
		quick = flag.Bool("quick", false, "one cell, one repetition (CI smoke)")
		reps  = flag.Int("reps", 3, "repetitions per point (best wall time wins)")
		out   = flag.String("o", "BENCH_10.json", "output JSON path ('-' for stdout)")
	)
	flag.Parse()
	if *quick {
		*reps = 1
	}
	if *reps <= 0 {
		cli.Usagef(tool, "-reps must be positive")
	}

	widths := []int{0, 1, 2, 4}
	rep := report{
		Version: 4, Tool: tool, Quick: *quick,
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		CPUs: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		Widths: widths,
	}

	for _, c := range matrix(*quick) {
		w := workload(c)
		sp := speedup{cell: c, OverSerial: map[string]float64{}}
		var serial float64
		for _, width := range widths {
			r := measure(c, w, width, *reps)
			rep.Results = append(rep.Results, r)
			if width == 0 {
				serial = r.CyclesPerSec
			} else if serial > 0 {
				sp.OverSerial[fmt.Sprintf("%d", width)] = r.CyclesPerSec / serial
			}
			fmt.Fprintf(os.Stderr, "%s %s procs=%d shards=%d: %.2fs wall, %.0f cycles/s, %d allocs, obs overhead %.2fx\n",
				c.App, c.Scheme, c.Procs, width, r.WallSeconds, r.CyclesPerSec, r.AllocObjs, r.ObsOverhead)
		}
		rep.Speedups = append(rep.Speedups, sp)
	}

	cr := measureCampaign(*reps)
	rep.Campaign = &cr
	fmt.Fprintf(os.Stderr, "campaign %d jobs: volatile %.0f jobs/s, durable %.0f jobs/s, checkpoint overhead %.2fx\n",
		cr.Jobs, cr.VolatileJobsPerSec, cr.DurableJobsPerSec, cr.CheckpointOverhead)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		cli.Fatalf(tool, "%v", err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		cli.Fatalf(tool, "%v", err)
	}
	fmt.Fprintf(os.Stderr, "%s: wrote %s\n", tool, *out)
}
