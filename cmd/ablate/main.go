// Command ablate runs the ablation studies that probe the paper's fixed
// design choices: the coarse vector's region size, the pointer budget of
// the limited schemes, and the §7 queued-lock grant behaviour under a
// hot-spot lock.
package main

import (
	"flag"
	"fmt"

	"dircoh/internal/cli"
	"dircoh/internal/exp"
	"dircoh/internal/sim"
)

func main() {
	var (
		app      = flag.String("app", "LocusRoute", "application for the sweeps")
		procs    = flag.Int("procs", exp.Procs, "processors")
		rounds   = flag.Int("rounds", 8, "lock acquisitions per processor in the contention study")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = one per core)")
	)
	obsFlags := cli.NewObs("ablate").EnableServer()
	flag.Parse()
	cli.Check("ablate", obsFlags.Start())
	defer obsFlags.Stop()
	ob := exp.Observer{Tracer: obsFlags.Tracer, Spans: obsFlags.Spans, Metrics: obsFlags.WriteMetrics, SampleEvery: obsFlags.SampleEvery(), Faults: obsFlags.Faults(), Deadline: obsFlags.Deadline(), Live: obsFlags.Live()}
	if obsFlags.Checking() {
		ob.Check = obsFlags.CheckSink
	}
	s := exp.NewSession(ob, *parallel, obsFlags.Shards())

	fmt.Printf("Region-size sweep (Dir3CV_r on %s):\n\n", *app)
	_, tb := s.RegionSweep(*app, *procs)
	fmt.Println(tb)

	fmt.Printf("Pointer-count sweep (on %s):\n\n", *app)
	_, tb = s.PointerSweep(*app, *procs)
	fmt.Println(tb)

	fmt.Printf("Directory organizations (§7 alternatives, on %s):\n\n", *app)
	_, tb = s.DirectoryComparison(*app, *procs)
	fmt.Println(tb)

	fmt.Printf("Queued-lock contention (%d procs x %d acquisitions of one lock):\n\n", *procs, *rounds)
	_, tb = s.LockContention(*procs, *rounds)
	fmt.Println(tb)

	fmt.Println("Directory occupancy (§4.2 motivation — full directories are nearly empty):")
	fmt.Println()
	_, tb = s.OccupancyStudy(*procs)
	fmt.Println(tb)

	fmt.Printf("Network ejection-port contention (on %s):\n\n", *app)
	_, tb = s.NetworkContention(*app, *procs, []sim.Time{0, 4, 8})
	fmt.Println(tb)

	fmt.Println("Block-size tradeoff (§3.1, on MP3D):")
	fmt.Println()
	_, tb = s.BlockSizeStudy("MP3D", *procs, []int{16, 32, 64})
	fmt.Println(tb)

	fmt.Println("Barrier implementations under repeated global synchronization:")
	fmt.Println()
	_, tb = s.BarrierStudy(*procs, 8, []sim.Time{0, 8})
	fmt.Println(tb)
}
