// Command invdist regenerates the paper's invalidation-distribution
// results: Figure 2 (Monte-Carlo average invalidations versus sharer
// count, for 32 and 64 processors) and Figures 3–6 (measured invalidation
// distributions of LocusRoute under the four directory schemes).
package main

import (
	"flag"
	"fmt"

	"dircoh/internal/analytic"
	"dircoh/internal/cli"
	"dircoh/internal/core"
	"dircoh/internal/exp"
	"dircoh/internal/stats"
)

// fig2Plot draws the Figure 2 curves as an ASCII chart.
func fig2Plot(nodes, trials int, seed int64) string {
	region := 2
	if nodes >= 64 {
		region = 4
	}
	xs := make([]int, 0, nodes-1)
	for s := 1; s < nodes; s++ {
		xs = append(xs, s)
	}
	slice := func(curve []float64) []float64 { return curve[1:nodes] }
	p := stats.NewPlot(
		fmt.Sprintf("Figure 2: average invalidations vs sharers, %d processors", nodes),
		"number of sharers", "invalidations per write")
	p.AddSeries("Dir3B", xs, slice(analytic.InvalCurve(core.Must(core.NewLimitedBroadcast(3, nodes)), trials, seed)))
	p.AddSeries("Dir3X", xs, slice(analytic.InvalCurve(core.Must(core.NewSuperset(3, nodes)), trials, seed)))
	p.AddSeries(fmt.Sprintf("Dir3CV%d", region), xs, slice(analytic.InvalCurve(core.Must(core.NewCoarseVector(3, region, nodes)), trials, seed)))
	p.AddSeries(fmt.Sprintf("Dir%d", nodes), xs, slice(analytic.InvalCurve(core.Must(core.NewFullVector(nodes)), trials, seed)))
	return p.Render(64, 20)
}

func main() {
	var (
		fig2   = flag.Bool("fig2", true, "print Figure 2 (analytic curves)")
		plot   = flag.Bool("plot", true, "draw Figure 2 as an ASCII chart (in addition to the table)")
		table  = flag.Bool("table", false, "print the full Figure 2 data table")
		hist   = flag.Bool("hist", true, "print Figures 3-6 (LocusRoute distributions)")
		trials = flag.Int("trials", 2000, "Monte-Carlo trials per sharer count")
		procs  = flag.Int("procs", 32, "processors for the LocusRoute runs")
		seed   = flag.Int64("seed", 1, "Monte-Carlo seed")
	)
	obsFlags := cli.NewObs("invdist").EnableServer()
	flag.Parse()
	if err := analytic.ValidateTrials(*trials); err != nil {
		cli.Usagef("invdist", "%v", err)
	}
	cli.Check("invdist", obsFlags.Start())
	defer obsFlags.Stop()
	ob := exp.Observer{Tracer: obsFlags.Tracer, Spans: obsFlags.Spans, Metrics: obsFlags.WriteMetrics, SampleEvery: obsFlags.SampleEvery(), Faults: obsFlags.Faults(), Deadline: obsFlags.Deadline(), Live: obsFlags.Live()}
	if obsFlags.Checking() {
		ob.Check = obsFlags.CheckSink
	}
	s := exp.NewSession(ob, 0, obsFlags.Shards())

	if *fig2 {
		if *plot {
			fmt.Println(fig2Plot(32, *trials, *seed))
			fmt.Println(fig2Plot(64, *trials, *seed))
		}
		if *table {
			fmt.Println("Figure 2(a): average invalidations vs sharers, 32 processors")
			fmt.Println(analytic.Fig2Table(32, *trials, *seed))
			fmt.Println("Figure 2(b): average invalidations vs sharers, 64 processors")
			fmt.Println(analytic.Fig2Table(64, *trials, *seed))
		}
	}
	if *hist {
		for _, run := range s.Figs3to6(*procs) {
			fmt.Print(run.Result.InvalHist.Render(
				fmt.Sprintf("%s — invalidation distribution, LocusRoute", run.Label)))
			fmt.Println()
		}
	}
}
