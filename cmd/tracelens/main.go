// Command tracelens analyzes a transaction-span trace written by the
// simulator's -span-out flag (dashsim, sweep, suite, ...). It
// reconstructs every transaction's span tree, verifies it (parented
// children, synchronous phases tiling the root), and prints per-class
// latency percentiles, phase breakdowns, the slowest transactions with
// their critical paths, and the latency-vs-fanout distribution.
//
// Usage:
//
//	tracelens [-run label] [-top n] trace.jsonl
//	dashsim -app LU -span-out - | tracelens -
//
// Coherence-event lines (-trace-out) may share the file; they are
// skipped. Exit status is nonzero on any parse or structural error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dircoh/internal/cli"
)

const tool = "tracelens"

func main() {
	var (
		runLabel = flag.String("run", "", "analyze only this run label (default: all runs in the file)")
		top      = flag.Int("top", 10, "number of slowest transactions to list")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		cli.Usagef(tool, "usage: %s [-run label] [-top n] <trace.jsonl | ->", tool)
	}
	var in io.Reader = os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			cli.Fatalf(tool, "%v", err)
		}
		defer f.Close()
		in = f
	}
	analyses, err := parse(in)
	if err != nil {
		cli.Fatalf(tool, "%v", err)
	}
	matched := false
	for _, a := range analyses {
		if *runLabel != "" && a.run != *runLabel {
			continue
		}
		matched = true
		a.report(os.Stdout, *top)
	}
	if !matched {
		if *runLabel != "" {
			cli.Fatalf(tool, "no spans for run %q (have %s)", *runLabel, runNames(analyses))
		}
		cli.Fatalf(tool, "no spans in input (was the trace written with -span-out?)")
	}
}

func runNames(analyses []*analysis) string {
	if len(analyses) == 0 {
		return "none"
	}
	s := ""
	for i, a := range analyses {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%q", a.run)
	}
	return s
}
