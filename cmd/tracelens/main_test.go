package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dircoh/internal/apps"
	"dircoh/internal/cache"
	"dircoh/internal/machine"
	"dircoh/internal/obs"
)

// luTrace runs a small LU decomposition with both event tracing and span
// recording into one shared JSONL sink, returning the interleaved bytes —
// exactly what `dashsim -trace-out f -span-out f` produces.
func luTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	cfg := machine.Config{
		Procs:           4,
		ProcsPerCluster: 1,
		Block:           16,
		Cache:           cache.Config{L1Size: 256, L1Assoc: 1, L2Size: 1024, L2Assoc: 2, Block: 16},
		Scheme:          machine.CoarseVec2,
		Timing:          machine.DefaultTiming(),
		Trace:           obs.NewTracer(sink.Sub("LU/test"), 0),
		Spans:           obs.NewSpanRecorder(sink.Sub("LU/test"), 0),
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(apps.LU(apps.LUConfig{Procs: 4, N: 16})); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushTrace(); err != nil {
		t.Fatal(err)
	}
	if err := m.FlushSpans(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAnalyzeMachineRun feeds a real machine's interleaved event+span
// trace through the analyzer: parsing must succeed (which verifies every
// transaction's tree is complete and correctly tiled), and the tables
// must cover the classes the run produced.
func TestAnalyzeMachineRun(t *testing.T) {
	data := luTrace(t)
	analyses, err := parse(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(analyses) != 1 {
		t.Fatalf("got %d runs, want 1", len(analyses))
	}
	a := analyses[0]
	if a.run != "LU/test" {
		t.Fatalf("run label %q", a.run)
	}
	if len(a.txs) == 0 {
		t.Fatal("no transactions reconstructed")
	}
	if len(a.byClass[obs.TxRead]) == 0 {
		t.Fatal("no read transactions")
	}
	// Phase durations of synchronous phases must sum to the root's total
	// for every transaction (parse checks tiling; this checks the sums).
	for _, tx := range a.txs {
		var sum uint64
		for ph := 1; ph < obs.NumPhases; ph++ {
			if !obs.Phase(ph).Async(tx.root.Class) {
				sum += tx.phase[ph]
			}
		}
		if sum != tx.root.Duration() {
			t.Fatalf("tx %d: phases sum to %d, total %d", tx.root.Tx, sum, tx.root.Duration())
		}
	}
	var out bytes.Buffer
	a.report(&out, 5)
	for _, want := range []string{"run LU/test", "read", "req.travel", "slowest 5", "fan-out"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestParseSkipsEventLines(t *testing.T) {
	in := `{"run":"r","t":5,"node":1,"ev":"req.issue","block":2,"n":0}
{"run":"r","tx":1,"span":1,"parent":0,"class":"read","phase":"total","node":0,"block":2,"start":10,"end":30,"n":0}
{"run":"r","tx":1,"span":2,"parent":1,"class":"read","phase":"req.travel","node":0,"block":2,"start":10,"end":30,"n":0}
`
	analyses, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(analyses) != 1 || len(analyses[0].txs) != 1 {
		t.Fatalf("got %+v", analyses)
	}
}

func TestParseErrors(t *testing.T) {
	root := `{"tx":1,"span":1,"parent":0,"class":"read","phase":"total","node":0,"block":2,"start":10,"end":30,"n":0}`
	cases := []struct {
		name string
		in   string
	}{
		{"malformed json", `{"tx":1,"span":1`},
		{"unknown class", strings.Replace(root, `"read"`, `"bogus"`, 1)},
		{"unknown phase", strings.Replace(root, `"total"`, `"warp"`, 1)},
		{"orphan child", `{"tx":9,"span":10,"parent":9,"class":"read","phase":"req.travel","node":0,"block":2,"start":10,"end":30,"n":0}`},
		{"bad tiling", root + "\n" + `{"tx":1,"span":2,"parent":1,"class":"read","phase":"req.travel","node":0,"block":2,"start":10,"end":20,"n":0}`},
		{"end before start", strings.Replace(root, `"start":10`, `"start":99`, 1)},
		{"duplicate tx id", root + "\n" + root},
	}
	for _, tc := range cases {
		if _, err := parse(strings.NewReader(tc.in + "\n")); err == nil {
			t.Errorf("%s: parse accepted bad input", tc.name)
		}
	}
	// A colliding root TxID (two transactions claiming id 1) names the id
	// and the run in the error, so a broken shard merge is diagnosable.
	_, errDup := parse(strings.NewReader(root + "\n" + root + "\n"))
	if errDup == nil || !strings.Contains(errDup.Error(), "duplicate transaction id 1") {
		t.Fatalf("duplicate tx id error = %v", errDup)
	}

	// Unknown names surface the obs layer's typed errors.
	_, err := parse(strings.NewReader(strings.Replace(root, `"read"`, `"bogus"`, 1) + "\n"))
	var uc *obs.UnknownTxClassError
	if !errors.As(err, &uc) || uc.Name != "bogus" {
		t.Fatalf("want UnknownTxClassError, got %v", err)
	}
}

func TestQuantile(t *testing.T) {
	if got := quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %d", got)
	}
	sorted := []uint64{10, 20, 30, 40}
	for _, tc := range []struct {
		q    float64
		want uint64
	}{{0.25, 10}, {0.5, 20}, {0.75, 30}, {0.99, 40}, {1, 40}} {
		if got := quantile(sorted, tc.q); got != tc.want {
			t.Fatalf("q=%v: got %d, want %d", tc.q, got, tc.want)
		}
	}
}
