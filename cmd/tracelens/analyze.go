package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"dircoh/internal/obs"
	"dircoh/internal/stats"
)

// spanLine is the JSONL encoding of one span (obs.JSONLSink.WriteSpans).
// Ev catches coherence-event lines sharing the file, which are skipped.
type spanLine struct {
	Run    string `json:"run"`
	Tx     uint64 `json:"tx"`
	Span   uint64 `json:"span"`
	Parent uint64 `json:"parent"`
	Class  string `json:"class"`
	Phase  string `json:"phase"`
	Node   int32  `json:"node"`
	Block  int64  `json:"block"`
	Start  uint64 `json:"start"`
	End    uint64 `json:"end"`
	N      int64  `json:"n"`
	Ev     string `json:"ev"`
}

// tx is one reconstructed transaction: its root span plus the per-phase
// durations of its children.
type tx struct {
	root     obs.Span
	children []obs.Span
	phase    [obs.NumPhases]uint64 // summed child duration by phase
}

// analysis is everything tracelens extracts from one run's span stream.
type analysis struct {
	run     string
	txs     []*tx
	byClass [obs.NumTxClasses][]*tx
}

// parse reads span JSONL from r, grouping transactions by run label.
// Coherence-event lines ("ev" key) interleaved in the same file are
// skipped. Any malformed line, unknown class/phase name, duplicate root
// transaction id, orphan child
// span, or synchronous-phase tiling violation is an error: the trace is
// the analyzer's ground truth and a broken one must not produce silently
// wrong tables.
func parse(r io.Reader) ([]*analysis, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type pending struct {
		roots    map[uint64]*tx
		orphans  int
		firstTx  uint64
		children map[uint64][]obs.Span // children seen before their root
	}
	runs := map[string]*pending{}
	var order []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var sl spanLine
		if err := json.Unmarshal([]byte(line), &sl); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if sl.Ev != "" || sl.Span == 0 {
			continue // coherence event (or foreign line); not a span
		}
		class, err := obs.ParseTxClass(sl.Class)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		phase, err := obs.ParsePhase(sl.Phase)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if sl.End < sl.Start {
			return nil, fmt.Errorf("line %d: span %d ends (%d) before it starts (%d)", lineNo, sl.Span, sl.End, sl.Start)
		}
		p := runs[sl.Run]
		if p == nil {
			p = &pending{roots: map[uint64]*tx{}, children: map[uint64][]obs.Span{}}
			runs[sl.Run] = p
			order = append(order, sl.Run)
		}
		s := obs.Span{Tx: sl.Tx, ID: sl.Span, Parent: sl.Parent, Class: class, Phase: phase,
			Node: sl.Node, Block: sl.Block, Start: sl.Start, End: sl.End, N: sl.N}
		if s.Parent == 0 {
			if s.ID != s.Tx || s.Phase != obs.PhTotal {
				return nil, fmt.Errorf("line %d: malformed root span %d (tx %d, phase %s)", lineNo, s.ID, s.Tx, s.Phase)
			}
			if prev := p.roots[s.ID]; prev != nil {
				// Root TxIDs must be unique within a run: the sharded core
				// derives them as cluster<<40|seq, so a collision means a
				// broken merge (or two runs written under one label) and
				// every table downstream would silently blend the two
				// transactions.
				return nil, fmt.Errorf("line %d: duplicate transaction id %d in run %q (first root starts at cycle %d)", lineNo, s.ID, sl.Run, prev.root.Start)
			}
			t := &tx{root: s}
			p.roots[s.ID] = t
			// Adopt children that arrived first (async acks can outlive
			// the root in the emission stream only in reverse, but be
			// permissive about ordering).
			for _, c := range p.children[s.ID] {
				t.children = append(t.children, c)
				t.phase[c.Phase] += c.Duration()
			}
			delete(p.children, s.ID)
			continue
		}
		if t := p.roots[s.Parent]; t != nil {
			t.children = append(t.children, s)
			t.phase[s.Phase] += s.Duration()
		} else {
			p.children[s.Parent] = append(p.children[s.Parent], s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var out []*analysis
	for _, run := range order {
		p := runs[run]
		if n := len(p.children); n > 0 {
			for parent := range p.children {
				return nil, fmt.Errorf("run %q: %d orphan span group(s); first parent %d has no root span", run, n, parent)
			}
		}
		a := &analysis{run: run}
		for _, t := range p.roots {
			if err := checkTiling(t); err != nil {
				return nil, fmt.Errorf("run %q: %v", run, err)
			}
			a.txs = append(a.txs, t)
			a.byClass[t.root.Class] = append(a.byClass[t.root.Class], t)
		}
		sort.Slice(a.txs, func(i, j int) bool { return a.txs[i].root.Tx < a.txs[j].root.Tx })
		out = append(out, a)
	}
	return out, nil
}

// checkTiling verifies the span contract: a transaction's synchronous
// phase spans partition [root.Start, root.End] exactly, in time order;
// asynchronous phases (Phase.Async) may extend past the root.
func checkTiling(t *tx) error {
	var sync []obs.Span
	for _, c := range t.children {
		if c.Tx != t.root.Tx || c.Class != t.root.Class {
			return fmt.Errorf("tx %d: child span %d disagrees with root (tx %d class %s)", t.root.Tx, c.ID, c.Tx, c.Class)
		}
		if !c.Phase.Async(t.root.Class) {
			sync = append(sync, c)
		}
	}
	sort.Slice(sync, func(i, j int) bool { return sync[i].Start < sync[j].Start })
	at := t.root.Start
	for _, c := range sync {
		if c.Start != at {
			return fmt.Errorf("tx %d: phase %s starts at %d, want %d", t.root.Tx, c.Phase, c.Start, at)
		}
		at = c.End
	}
	if at != t.root.End {
		return fmt.Errorf("tx %d: synchronous phases cover [..%d], root ends at %d", t.root.Tx, at, t.root.End)
	}
	return nil
}

// quantile returns the q-quantile of sorted durations (rank ceil(q*n),
// matching obs.Histogram.Quantile but exact).
func quantile(sorted []uint64, q float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// classTable builds the per-class latency table: count, mean, p50/p95/p99
// and max cycles from issue to completion.
func (a *analysis) classTable() *stats.Table {
	tb := stats.NewTable("class", "count", "mean", "p50", "p95", "p99", "max")
	for c := 0; c < obs.NumTxClasses; c++ {
		txs := a.byClass[c]
		if len(txs) == 0 {
			continue
		}
		durs := make([]uint64, len(txs))
		var sum uint64
		for i, t := range txs {
			durs[i] = t.root.Duration()
			sum += durs[i]
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		tb.AddRow(obs.TxClass(c).String(),
			fmt.Sprintf("%d", len(durs)),
			fmt.Sprintf("%.1f", float64(sum)/float64(len(durs))),
			fmt.Sprintf("%d", quantile(durs, 0.50)),
			fmt.Sprintf("%d", quantile(durs, 0.95)),
			fmt.Sprintf("%d", quantile(durs, 0.99)),
			fmt.Sprintf("%d", durs[len(durs)-1]))
	}
	return tb
}

// phaseTable breaks each class's mean latency down by phase: the mean
// cycles spent per transaction in each synchronous phase (these columns
// sum to the mean total) plus the asynchronous ack.gather overlap.
func (a *analysis) phaseTable() *stats.Table {
	header := []string{"class", "total"}
	for ph := 1; ph < obs.NumPhases; ph++ {
		header = append(header, obs.Phase(ph).String())
	}
	tb := stats.NewTable(header...)
	for c := 0; c < obs.NumTxClasses; c++ {
		txs := a.byClass[c]
		if len(txs) == 0 {
			continue
		}
		var total uint64
		var phase [obs.NumPhases]uint64
		for _, t := range txs {
			total += t.root.Duration()
			for ph := range phase {
				phase[ph] += t.phase[ph]
			}
		}
		n := float64(len(txs))
		row := []string{obs.TxClass(c).String(), fmt.Sprintf("%.1f", float64(total)/n)}
		for ph := 1; ph < obs.NumPhases; ph++ {
			cell := fmt.Sprintf("%.1f", float64(phase[ph])/n)
			if obs.Phase(ph).Async(obs.TxClass(c)) {
				cell += "*"
			}
			row = append(row, cell)
		}
		tb.AddRow(row...)
	}
	return tb
}

// slowestTable lists the top-n slowest transactions with their critical
// path: every phase duration, so the dominant segment is visible per row.
func (a *analysis) slowestTable(n int) *stats.Table {
	txs := append([]*tx(nil), a.txs...)
	sort.Slice(txs, func(i, j int) bool {
		di, dj := txs[i].root.Duration(), txs[j].root.Duration()
		if di != dj {
			return di > dj
		}
		return txs[i].root.Tx < txs[j].root.Tx
	})
	if n > len(txs) {
		n = len(txs)
	}
	tb := stats.NewTable("tx", "class", "node", "block", "total", "critical path")
	for _, t := range txs[:n] {
		var path []string
		sync := append([]obs.Span(nil), t.children...)
		sort.Slice(sync, func(i, j int) bool { return sync[i].Start < sync[j].Start })
		for _, c := range sync {
			seg := fmt.Sprintf("%s %d", c.Phase, c.Duration())
			if c.Phase.Async(t.root.Class) {
				seg += "*"
			}
			path = append(path, seg)
		}
		tb.AddRow(fmt.Sprintf("%d", t.root.Tx), t.root.Class.String(),
			fmt.Sprintf("%d", t.root.Node), fmt.Sprintf("%d", t.root.Block),
			fmt.Sprintf("%d", t.root.Duration()), strings.Join(path, " | "))
	}
	return tb
}

// fanoutTable buckets transactions by invalidation fan-out and shows how
// latency moves with it (the paper's traffic-vs-latency tradeoff, per
// transaction).
func (a *analysis) fanoutTable() *stats.Table {
	type bucket struct {
		durs []uint64
		sum  uint64
	}
	buckets := map[int64]*bucket{}
	for _, t := range a.txs {
		b := buckets[t.root.N]
		if b == nil {
			b = &bucket{}
			buckets[t.root.N] = b
		}
		d := t.root.Duration()
		b.durs = append(b.durs, d)
		b.sum += d
	}
	fans := make([]int64, 0, len(buckets))
	for f := range buckets {
		fans = append(fans, f)
	}
	sort.Slice(fans, func(i, j int) bool { return fans[i] < fans[j] })
	tb := stats.NewTable("fanout", "count", "mean", "p95")
	for _, f := range fans {
		b := buckets[f]
		sort.Slice(b.durs, func(i, j int) bool { return b.durs[i] < b.durs[j] })
		tb.AddRow(fmt.Sprintf("%d", f),
			fmt.Sprintf("%d", len(b.durs)),
			fmt.Sprintf("%.1f", float64(b.sum)/float64(len(b.durs))),
			fmt.Sprintf("%d", quantile(b.durs, 0.95)))
	}
	return tb
}

// report writes the full analysis for one run.
func (a *analysis) report(w io.Writer, top int) {
	label := a.run
	if label == "" {
		label = "(unlabeled)"
	}
	fmt.Fprintf(w, "== run %s: %d transactions ==\n\n", label, len(a.txs))
	fmt.Fprintf(w, "transaction latency by class (cycles):\n%s\n", a.classTable())
	fmt.Fprintf(w, "mean phase breakdown (cycles per transaction; * = overlaps the reply):\n%s\n", a.phaseTable())
	fmt.Fprintf(w, "slowest %d transactions:\n%s\n", top, a.slowestTable(top))
	fmt.Fprintf(w, "latency vs invalidation fan-out:\n%s\n", a.fanoutTable())
}
