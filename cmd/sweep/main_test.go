package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dircoh/internal/exp"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (rerun with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestSweepGoldenAnalytic locks the `sweep -only t1,2` output: Table 1's
// overhead arithmetic and Figure 2's Monte-Carlo curves at a small trial
// count with the fixed seed the sweep always uses.
func TestSweepGoldenAnalytic(t *testing.T) {
	var buf bytes.Buffer
	runSweep(exp.NewSession(exp.Observer{}, 0, 0), &buf, "t1,2", 8, 64)
	checkGolden(t, "sweep_t1_2.golden", buf.Bytes())
}

// TestSweepGoldenTable2 locks the Table 2 formatting at a small machine
// size (workload characterization only — no simulation).
func TestSweepGoldenTable2(t *testing.T) {
	var buf bytes.Buffer
	runSweep(exp.NewSession(exp.Observer{}, 0, 0), &buf, "t2", 8, 1)
	checkGolden(t, "sweep_t2.golden", buf.Bytes())
}

// TestSweepParallelismInvariant renders a simulation-backed section at
// several pool widths and requires byte-identical output.
func TestSweepParallelismInvariant(t *testing.T) {
	render := func(par int) []byte {
		var buf bytes.Buffer
		runSweep(exp.NewSession(exp.Observer{}, par, 0), &buf, "3-6", 8, 1)
		return buf.Bytes()
	}
	want := render(1)
	if len(want) == 0 {
		t.Fatal("empty sweep output")
	}
	for _, par := range []int{2, 4} {
		if got := render(par); !bytes.Equal(got, want) {
			t.Fatalf("-parallel %d output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				par, want, got)
		}
	}
}

// TestSweepShardsInvariant renders a simulation-backed section with the
// sharded machine core at several widths and requires byte-identical
// output — the end-to-end form of the sharded engine's equivalence
// guarantee. Width 1 is the reference: every width >= 1 shares the
// canonical (time, origin cluster, sequence) event order. The legacy
// serial engine (-shards 0) keeps its own heap-insertion tie-breaking
// and is locked by the other golden tests, not this one.
func TestSweepShardsInvariant(t *testing.T) {
	render := func(shards int) []byte {
		var buf bytes.Buffer
		runSweep(exp.NewSession(exp.Observer{}, 0, shards), &buf, "7-10", 8, 1)
		return buf.Bytes()
	}
	want := render(1)
	if len(want) == 0 {
		t.Fatal("empty sweep output")
	}
	for _, shards := range []int{2, 4} {
		if got := render(shards); !bytes.Equal(got, want) {
			t.Fatalf("-shards %d output differs from -shards 1:\n--- shards 1 ---\n%s\n--- shards %d ---\n%s",
				shards, want, shards, got)
		}
	}
}

func TestWant(t *testing.T) {
	cases := []struct {
		only, key string
		want      bool
	}{
		{"", "7-10", true},
		{"all", "13", true},
		{"t1,2", "t1", true},
		{"t1,2", "2", true},
		{"t1, 2", "2", true},
		{"t1,2", "t2", false},
		{"7-10", "7", false},
	}
	for _, c := range cases {
		if got := want(c.only, c.key); got != c.want {
			t.Errorf("want(%q, %q) = %v, want %v", c.only, c.key, got, c.want)
		}
	}
}
