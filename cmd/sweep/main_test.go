package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dircoh/internal/exp"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (rerun with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (rerun with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestSweepGoldenAnalytic locks the `sweep -only t1,2` output: Table 1's
// overhead arithmetic and Figure 2's Monte-Carlo curves at a small trial
// count with the fixed seed the sweep always uses.
func TestSweepGoldenAnalytic(t *testing.T) {
	var buf bytes.Buffer
	runSweep(exp.NewSession(exp.Observer{}, 0, 0), &buf, "t1,2", 8, 64)
	checkGolden(t, "sweep_t1_2.golden", buf.Bytes())
}

// TestSweepGoldenTable2 locks the Table 2 formatting at a small machine
// size (workload characterization only — no simulation).
func TestSweepGoldenTable2(t *testing.T) {
	var buf bytes.Buffer
	runSweep(exp.NewSession(exp.Observer{}, 0, 0), &buf, "t2", 8, 1)
	checkGolden(t, "sweep_t2.golden", buf.Bytes())
}

// TestSweepGoldenScale locks the analytic half of the beyond-64 section:
// Table 1 extended along the paper's growth axis and the per-scheme entry
// cost table at 64-4096 clusters. Pure arithmetic, no simulation.
func TestSweepGoldenScale(t *testing.T) {
	var buf bytes.Buffer
	runSweep(exp.NewSession(exp.Observer{}, 0, 0), &buf, "scale", 8, 1)
	checkGolden(t, "sweep_scale.golden", buf.Bytes())
}

// TestSweepGoldenScaleSim locks the simulated beyond-64 figure: the scale
// probe at 256, 1024 and 4096 clusters under the full roster. The largest
// cell simulates a 4096-cluster machine, so the test is skipped in short
// mode (it is the bulk of this package's non-short runtime).
func TestSweepGoldenScaleSim(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates 256-4096 cluster machines")
	}
	var buf bytes.Buffer
	runSweep(exp.NewSession(exp.Observer{}, 0, 0), &buf, "scale-sim", 8, 1)
	checkGolden(t, "sweep_scale_sim.golden", buf.Bytes())
}

// TestScaleSmokeSerialVsSharded is the bounded large-geometry smoke: one
// 1024-cluster scale cell (the adaptive two-level scheme) run on the
// sharded machine core at widths 1 and 4 must render byte-identically —
// the width-independence guarantee exercised at the scale the compact
// encodings exist for. Bounded to a single cell so CI stays fast.
func TestScaleSmokeSerialVsSharded(t *testing.T) {
	saved := exp.ScaleSchemes
	exp.ScaleSchemes = exp.ScaleSchemes[2:3] // Two Level only
	defer func() { exp.ScaleSchemes = saved }()
	render := func(shards int) []byte {
		var buf bytes.Buffer
		_, tb := exp.NewSession(exp.Observer{}, 0, shards).ScaleStudy([]int{1024}, 2)
		buf.WriteString(tb.String())
		return buf.Bytes()
	}
	want := render(1)
	if len(want) == 0 {
		t.Fatal("empty scale output")
	}
	if got := render(4); !bytes.Equal(got, want) {
		t.Fatalf("-shards 4 scale cell differs from -shards 1:\n--- shards 1 ---\n%s\n--- shards 4 ---\n%s", want, got)
	}
}

// TestSweepParallelismInvariant renders a simulation-backed section at
// several pool widths and requires byte-identical output.
func TestSweepParallelismInvariant(t *testing.T) {
	render := func(par int) []byte {
		var buf bytes.Buffer
		runSweep(exp.NewSession(exp.Observer{}, par, 0), &buf, "3-6", 8, 1)
		return buf.Bytes()
	}
	want := render(1)
	if len(want) == 0 {
		t.Fatal("empty sweep output")
	}
	for _, par := range []int{2, 4} {
		if got := render(par); !bytes.Equal(got, want) {
			t.Fatalf("-parallel %d output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				par, want, got)
		}
	}
}

// TestSweepShardsInvariant renders a simulation-backed section with the
// sharded machine core at several widths and requires byte-identical
// output — the end-to-end form of the sharded engine's equivalence
// guarantee. Width 1 is the reference: every width >= 1 shares the
// canonical (time, origin cluster, sequence) event order. The legacy
// serial engine (-shards 0) keeps its own heap-insertion tie-breaking
// and is locked by the other golden tests, not this one.
func TestSweepShardsInvariant(t *testing.T) {
	render := func(shards int) []byte {
		var buf bytes.Buffer
		runSweep(exp.NewSession(exp.Observer{}, 0, shards), &buf, "7-10", 8, 1)
		return buf.Bytes()
	}
	want := render(1)
	if len(want) == 0 {
		t.Fatal("empty sweep output")
	}
	for _, shards := range []int{2, 4} {
		if got := render(shards); !bytes.Equal(got, want) {
			t.Fatalf("-shards %d output differs from -shards 1:\n--- shards 1 ---\n%s\n--- shards %d ---\n%s",
				shards, want, shards, got)
		}
	}
}

func TestWant(t *testing.T) {
	cases := []struct {
		only, key string
		want      bool
	}{
		{"", "7-10", true},
		{"all", "13", true},
		{"t1,2", "t1", true},
		{"t1,2", "2", true},
		{"t1, 2", "2", true},
		{"t1,2", "t2", false},
		{"7-10", "7", false},
	}
	for _, c := range cases {
		if got := want(c.only, c.key); got != c.want {
			t.Errorf("want(%q, %q) = %v, want %v", c.only, c.key, got, c.want)
		}
	}
}
