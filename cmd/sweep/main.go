// Command sweep runs the paper's complete experiment suite and prints
// every table and figure of the evaluation section. This is the program
// that produced EXPERIMENTS.md.
//
//	sweep            # everything (several minutes)
//	sweep -only 7-10 # just the scheme-comparison figures
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"dircoh/internal/analytic"
	"dircoh/internal/exp"
)

func want(only, key string) bool {
	if only == "" || only == "all" {
		return true
	}
	for _, k := range strings.Split(only, ",") {
		if strings.TrimSpace(k) == key {
			return true
		}
	}
	return false
}

func section(title string) {
	fmt.Printf("\n===== %s =====\n\n", title)
}

func main() {
	var (
		only   = flag.String("only", "all", "comma list of: 2, t1, t2, 3-6, 7-10, 11-12, 13, 14")
		procs  = flag.Int("procs", exp.Procs, "processors for the simulation experiments")
		trials = flag.Int("trials", 2000, "Monte-Carlo trials for Figure 2")
	)
	flag.Parse()
	start := time.Now()

	if want(*only, "2") {
		section("Figure 2(a): average invalidations vs sharers, 32 processors")
		fmt.Println(analytic.Fig2Table(32, *trials, 1))
		section("Figure 2(b): average invalidations vs sharers, 64 processors")
		fmt.Println(analytic.Fig2Table(64, *trials, 1))
	}
	if want(*only, "t1") {
		section("Table 1: sample machine configurations")
		fmt.Println(analytic.Table1())
	}
	if want(*only, "t2") {
		section("Table 2: general application characteristics")
		fmt.Println(exp.Table2(*procs))
	}
	if want(*only, "3-6") {
		section("Figures 3-6: invalidation distributions, LocusRoute")
		for _, run := range exp.Figs3to6(*procs) {
			fmt.Print(run.Result.InvalHist.Render(run.Label))
			fmt.Println()
		}
	}
	if want(*only, "7-10") {
		for i, app := range []string{"LU", "DWF", "MP3D", "LocusRoute"} {
			section(fmt.Sprintf("Figure %d: performance for %s", 7+i, app))
			_, tb := exp.SchemeComparison(app, *procs)
			fmt.Println(tb)
		}
	}
	if want(*only, "11-12") {
		section("Figure 11: sparse directory performance for LU")
		_, tb := exp.SparsePerformance("LU", *procs)
		fmt.Println(tb)
		section("Figure 12: sparse directory performance for DWF")
		_, tb = exp.SparsePerformance("DWF", *procs)
		fmt.Println(tb)
	}
	if want(*only, "13") {
		section("Figure 13: effect of associativity in sparse directory (LU)")
		_, tb := exp.AssocSweep("LU", *procs)
		fmt.Println(tb)
	}
	if want(*only, "14") {
		section("Figure 14: effect of replacement policy in sparse directory (LU)")
		_, tb := exp.PolicySweep("LU", *procs)
		fmt.Println(tb)
	}
	fmt.Printf("\nsweep completed in %s\n", time.Since(start).Round(time.Second))
}
