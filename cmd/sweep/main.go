// Command sweep runs the paper's complete experiment suite and prints
// every table and figure of the evaluation section. This is the program
// that produced EXPERIMENTS.md. Independent simulations are sharded
// across a worker pool; output is byte-identical at any parallelism.
//
//	sweep             # everything, using all cores
//	sweep -only 7-10  # just the scheme-comparison figures
//	sweep -parallel 1 # serial baseline
//	sweep -shards 4   # sharded machine core, bit-identical output
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dircoh/internal/analytic"
	"dircoh/internal/cli"
	"dircoh/internal/exp"
)

func main() {
	var (
		only     = flag.String("only", "all", "comma list of: 2, t1, t2, 3-6, 7-10, 11-12, 13, 14, scale, scale-sim")
		procs    = flag.Int("procs", exp.Procs, "processors for the simulation experiments")
		trials   = flag.Int("trials", 2000, "Monte-Carlo trials for Figure 2")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = one per core)")
	)
	obsFlags := cli.NewObs("sweep").EnableServer()
	flag.Parse()
	if err := analytic.ValidateTrials(*trials); err != nil {
		cli.Usagef("sweep", "%v", err)
	}
	cli.Check("sweep", obsFlags.Start())
	defer obsFlags.Stop()
	ob := exp.Observer{Tracer: obsFlags.Tracer, Spans: obsFlags.Spans, Metrics: obsFlags.WriteMetrics, SampleEvery: obsFlags.SampleEvery(), Faults: obsFlags.Faults(), Deadline: obsFlags.Deadline(), Live: obsFlags.Live()}
	if obsFlags.Checking() {
		ob.Check = obsFlags.CheckSink
	}
	s := exp.NewSession(ob, *parallel, obsFlags.Shards())
	start := time.Now()

	runSweep(s, os.Stdout, *only, *procs, *trials)

	elapsed := time.Since(start)
	fmt.Printf("\nsweep completed in %s with %d workers\n", elapsed.Round(time.Second), s.Parallelism())
	fmt.Println(s.Meter().Summary().Footer(elapsed))
}
