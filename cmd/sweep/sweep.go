package main

import (
	"io"

	"dircoh/internal/exp"
)

// want reports whether the -only list selects the section key; the logic
// lives in exp.SectionEnabled so the campaign service shares it.
func want(only, key string) bool { return exp.SectionEnabled(only, key) }

// runSweep renders the selected sections to w. It is deterministic for a
// fixed (only, procs, trials) triple at any parallelism, which the
// golden-file and determinism tests rely on — keep wall-clock output out
// of here (the footer lives in main). The section renderers moved to
// exp.Session so the campaign service can journal and resume a sweep
// section by section; this wrapper keeps the command and its goldens.
func runSweep(s *exp.Session, w io.Writer, only string, procs, trials int) {
	s.Sweep(w, only, procs, trials)
}
