package main

import (
	"fmt"
	"io"
	"strings"

	"dircoh/internal/analytic"
	"dircoh/internal/exp"
)

func want(only, key string) bool {
	if only == "" || only == "all" {
		return true
	}
	for _, k := range strings.Split(only, ",") {
		if strings.TrimSpace(k) == key {
			return true
		}
	}
	return false
}

// runSweep renders the selected sections to w. It is deterministic for a
// fixed (only, procs, trials) triple at any parallelism, which the
// golden-file and determinism tests rely on — keep wall-clock output out
// of here (the footer lives in main).
func runSweep(s *exp.Session, w io.Writer, only string, procs, trials int) {
	section := func(title string) {
		fmt.Fprintf(w, "\n===== %s =====\n\n", title)
	}

	if want(only, "2") {
		section("Figure 2(a): average invalidations vs sharers, 32 processors")
		fmt.Fprintln(w, analytic.Fig2Table(32, trials, 1))
		section("Figure 2(b): average invalidations vs sharers, 64 processors")
		fmt.Fprintln(w, analytic.Fig2Table(64, trials, 1))
	}
	if want(only, "t1") {
		section("Table 1: sample machine configurations")
		fmt.Fprintln(w, analytic.Table1())
	}
	if want(only, "t2") {
		section("Table 2: general application characteristics")
		fmt.Fprintln(w, s.Table2(procs))
	}
	if want(only, "3-6") {
		section("Figures 3-6: invalidation distributions, LocusRoute")
		for _, run := range s.Figs3to6(procs) {
			fmt.Fprint(w, run.Result.InvalHist.Render(run.Label))
			fmt.Fprintln(w)
		}
	}
	if want(only, "7-10") {
		for i, app := range []string{"LU", "DWF", "MP3D", "LocusRoute"} {
			section(fmt.Sprintf("Figure %d: performance for %s", 7+i, app))
			_, tb := s.SchemeComparison(app, procs)
			fmt.Fprintln(w, tb)
		}
	}
	if want(only, "11-12") {
		section("Figure 11: sparse directory performance for LU")
		_, tb := s.SparsePerformance("LU", procs)
		fmt.Fprintln(w, tb)
		section("Figure 12: sparse directory performance for DWF")
		_, tb = s.SparsePerformance("DWF", procs)
		fmt.Fprintln(w, tb)
	}
	if want(only, "13") {
		section("Figure 13: effect of associativity in sparse directory (LU)")
		_, tb := s.AssocSweep("LU", procs)
		fmt.Fprintln(w, tb)
	}
	if want(only, "14") {
		section("Figure 14: effect of replacement policy in sparse directory (LU)")
		_, tb := s.PolicySweep("LU", procs)
		fmt.Fprintln(w, tb)
	}
	if want(only, "scale") {
		section("Beyond 64 processors: Table 1 extended to 4096-cluster machines")
		fmt.Fprintln(w, analytic.Table1For([]int{64, 256, 1024, 4096}))
		section("Beyond 64 processors: directory entry cost per scheme")
		fmt.Fprintln(w, analytic.EntryCostTable([]int{64, 256, 1024, 4096}))
	}
	if want(only, "scale-sim") {
		section("Beyond 64 processors: simulated traffic at 256-4096 clusters")
		_, tb := s.ScaleStudy(exp.ScaleAxis, 3)
		fmt.Fprintln(w, tb)
	}
}
