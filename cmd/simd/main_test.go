package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dircoh/internal/campaign"
)

// ---- in-process handler tests ----

func newTestServer(t *testing.T, cfg campaign.Config) (*httptest.Server, *campaign.Manager) {
	t.Helper()
	m, err := campaign.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer((&server{m: m}).routes())
	t.Cleanup(func() { ts.Close(); m.Close() })
	return ts, m
}

func postSpec(t *testing.T, ts *httptest.Server, tenant, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/campaigns", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, r io.Reader) campaign.Status {
	t.Helper()
	var st campaign.Status
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, ts *httptest.Server, id string) campaign.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeStatus(t, resp.Body)
		resp.Body.Close()
		switch st.State {
		case campaign.StateDone:
			return st
		case campaign.StateFailed:
			t.Fatalf("campaign %s failed: %+v", id, st.Failures)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never finished", id)
	return campaign.Status{}
}

const smallStress = `{"kind":"stress","name":"t","stress":{"trials":3,"seed":21,"procs":[4],"refs":100,"blocks":8}}`

func TestSubmitRunFetch(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Config{Parallel: 2})
	resp := postSpec(t, ts, "alice", smallStress)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: %s", resp.Status)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if st.ID == "" || st.Jobs != 3 || st.Tenant != "alice" {
		t.Fatalf("created status = %+v", st)
	}
	waitDone(t, ts, st.ID)

	res, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result: %s", res.Status)
	}
	body, _ := io.ReadAll(res.Body)
	if !strings.Contains(string(body), "trial   0 seed=") {
		t.Fatalf("result lacks trial lines:\n%s", body)
	}

	// Stream replays every job event plus the terminal record.
	sres, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sres.Body.Close()
	lines := 0
	sc := bufio.NewScanner(sres.Body)
	var lastLine string
	for sc.Scan() {
		lines++
		lastLine = sc.Text()
	}
	if lines != 4 || !strings.Contains(lastLine, `"done":true`) {
		t.Fatalf("stream had %d lines, last %q", lines, lastLine)
	}

	// List includes it.
	lres, err := http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer lres.Body.Close()
	var all []campaign.Status
	if err := json.NewDecoder(lres.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].ID != st.ID {
		t.Fatalf("list = %+v", all)
	}
}

func TestSubmitErrors(t *testing.T) {
	ts, _ := newTestServer(t, campaign.Config{TenantJobs: 4})
	// Malformed JSON.
	resp := postSpec(t, ts, "", `{"kind":`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %s", resp.Status)
	}
	resp.Body.Close()
	// Unknown kind.
	resp = postSpec(t, ts, "", `{"kind":"nope","stress":{}}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad kind: %s", resp.Status)
	}
	resp.Body.Close()
	// Over the tenant job quota: 429 with a Retry-After hint.
	resp = postSpec(t, ts, "greedy", `{"kind":"stress","stress":{"trials":50}}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota: %s", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q", ra)
	}
	resp.Body.Close()
	// Unknown campaign paths.
	for _, path := range []string{"/campaigns/zzz", "/campaigns/zzz/result", "/campaigns/zzz/stream"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %s", path, r.Status)
		}
		r.Body.Close()
	}
}

func TestHealthz(t *testing.T) {
	ts, m := newTestServer(t, campaign.Config{})
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", r.Status)
	}
	m.Close() // drains
	r, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %s", r.Status)
	}
}

// ---- end-to-end process tests (crash and drain) ----

var (
	simdBin   string
	buildOnce sync.Once
)

// buildSimd compiles the real binary once, lazily, so -short runs (which
// skip every process-level test) never pay for the build.
func buildSimd(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "simd-bin")
		if err != nil {
			t.Fatal(err)
		}
		bin := filepath.Join(dir, "simd")
		out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
		if err != nil {
			t.Fatalf("go build: %v\n%s", err, out)
		}
		simdBin = bin
	})
	if simdBin == "" {
		t.Fatal("simd binary build failed in an earlier test")
	}
	return simdBin
}

// proc is one running simd process. dir is its working directory (a
// fresh temp dir, so relative writes are observable and isolated).
type proc struct {
	cmd  *exec.Cmd
	addr string
	dir  string
}

func (p *proc) url(path string) string { return "http://" + p.addr + path }

// startSimd launches the built binary in a fresh working directory and
// parses its resolved listen address from stderr.
func startSimd(t *testing.T, args ...string) *proc {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command(buildSimd(t), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Dir = dir
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stderr)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if _, rest, ok := strings.Cut(line, "http://"); ok {
				if addr, _, found := strings.Cut(rest, " "); found {
					select {
					case addrCh <- addr:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &proc{cmd: cmd, addr: addr, dir: dir}
	case <-time.After(30 * time.Second):
		t.Fatal("simd never reported its listen address")
		return nil
	}
}

func httpPost(t *testing.T, url, body string) campaign.Status {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: %s: %s", url, resp.Status, b)
	}
	return decodeStatus(t, resp.Body)
}

func procStatus(t *testing.T, p *proc, id string) campaign.Status {
	t.Helper()
	resp, err := http.Get(p.url("/campaigns/" + id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return decodeStatus(t, resp.Body)
}

func procWaitDone(t *testing.T, p *proc, id string) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := procStatus(t, p, id)
		if st.State == campaign.StateDone {
			return
		}
		if st.State == campaign.StateFailed {
			t.Fatalf("campaign %s failed: %+v", id, st.Failures)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("campaign %s never finished", id)
}

func procResult(t *testing.T, p *proc, id string) string {
	t.Helper()
	resp, err := http.Get(p.url("/campaigns/" + id + "/result"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// bigStress is sized so a kill window exists mid-campaign with -parallel 1.
const bigStress = `{"kind":"stress","name":"e2e","stress":{"trials":12,"seed":7,"procs":[4,6],"refs":2000,"blocks":24}}`

// waitPartial polls until at least lo jobs (but not all) are done.
func waitPartial(t *testing.T, p *proc, id string, lo int) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := procStatus(t, p, id)
		if st.Done >= lo && st.Done < st.Jobs {
			return
		}
		if st.State == campaign.StateDone || st.Done >= st.Jobs {
			t.Skip("campaign finished before the kill window; machine too fast for this run")
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %d done jobs", id, lo)
}

// TestCrashResumeE2E: SIGKILL the server mid-campaign, restart it on the
// same data directory, and the campaign completes with a result
// byte-identical to an uninterrupted run of the same spec.
func TestCrashResumeE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level crash test")
	}
	data := t.TempDir()
	p1 := startSimd(t, "-data", data, "-parallel", "1", "-checkpoint-every", "2")
	st := httpPost(t, p1.url("/campaigns"), bigStress)
	waitPartial(t, p1, st.ID, 2)

	// Hard kill: no drain, no checkpoint flush beyond what already hit disk.
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p1.cmd.Wait()

	p2 := startSimd(t, "-data", data, "-parallel", "1", "-checkpoint-every", "2")
	procWaitDone(t, p2, st.ID)
	resumed := procResult(t, p2, st.ID)

	// Reference: same spec, uninterrupted, on the same server.
	ref := httpPost(t, p2.url("/campaigns"), bigStress)
	procWaitDone(t, p2, ref.ID)
	clean := procResult(t, p2, ref.ID)
	if resumed != clean {
		t.Fatalf("resumed result diverged from clean run:\nresumed:\n%s\nclean:\n%s", resumed, clean)
	}
}

// TestSigtermDrainE2E: SIGTERM mid-campaign drains gracefully (exit 0);
// a restart completes the campaign with the byte-identical result.
func TestSigtermDrainE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level drain test")
	}
	data := t.TempDir()
	p1 := startSimd(t, "-data", data, "-parallel", "1")
	st := httpPost(t, p1.url("/campaigns"), bigStress)
	waitPartial(t, p1, st.ID, 1)

	if err := p1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := p1.cmd.Wait(); err != nil {
		t.Fatalf("SIGTERM drain exited nonzero: %v", err)
	}

	p2 := startSimd(t, "-data", data, "-parallel", "1")
	procWaitDone(t, p2, st.ID)
	resumed := procResult(t, p2, st.ID)

	ref := httpPost(t, p2.url("/campaigns"), bigStress)
	procWaitDone(t, p2, ref.ID)
	if clean := procResult(t, p2, ref.ID); resumed != clean {
		t.Fatalf("drained result diverged from clean run:\nresumed:\n%s\nclean:\n%s", resumed, clean)
	}
}

// TestVolatileFlag: -data ” runs without persisting anything — the
// server's working directory stays empty end to end.
func TestVolatileFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level test")
	}
	p := startSimd(t, "-data", "")
	st := httpPost(t, p.url("/campaigns"), smallStress)
	procWaitDone(t, p, st.ID)
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("volatile server wrote files: %v", entries)
	}
}
