// Command simd is the long-running coherence-campaign service: clients
// POST experiment campaigns — paper sweeps, declarative suites, protocol
// stress campaigns — and the server decomposes each into indexed
// deterministic jobs, journals every completed job, and checkpoints
// periodically, so a server killed mid-campaign (SIGKILL included)
// resumes on restart by re-executing only the unfinished jobs and still
// produces the byte-identical final result. SIGTERM drains gracefully:
// in-flight jobs finish and are checkpointed, then the process exits 0.
//
//	simd -data /var/lib/simd -addr localhost:8723
//
// Endpoints:
//
//	POST /campaigns              submit a campaign spec (X-Tenant header
//	                             attributes it; 429 + Retry-After when
//	                             quotas or the queue reject it, 503 when
//	                             draining)
//	GET  /campaigns              every campaign's status
//	GET  /campaigns/{id}         one campaign's status
//	GET  /campaigns/{id}/result  the assembled result (when done)
//	GET  /campaigns/{id}/stream  JSONL job events, history then live
//	GET  /progress               in-flight run progress across campaigns
//	GET  /metrics                latest per-run metrics snapshots
//	GET  /healthz                "ok" (200) or "draining" (503)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"dircoh/internal/apps"
	"dircoh/internal/campaign"
	"dircoh/internal/cli"
	"dircoh/internal/obs"
)

const tool = "simd"

// server wires the campaign manager into HTTP handlers.
type server struct {
	m *campaign.Manager
}

func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", s.submit)
	mux.HandleFunc("GET /campaigns", s.list)
	mux.HandleFunc("GET /campaigns/{id}", s.get)
	mux.HandleFunc("GET /campaigns/{id}/result", s.result)
	mux.HandleFunc("GET /campaigns/{id}/stream", s.stream)
	mux.HandleFunc("GET /progress", s.progress)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /healthz", s.healthz)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	c, err := s.m.Submit(r.Header.Get("X-Tenant"), spec)
	if err != nil {
		var busy *campaign.BusyError
		switch {
		case errors.As(err, &busy):
			// Backpressure, not failure: tell the client when to retry.
			w.Header().Set("Retry-After", strconv.Itoa(int(busy.RetryAfter.Seconds())))
			writeJSON(w, http.StatusTooManyRequests, errorBody{busy.Error()})
		case errors.Is(err, campaign.ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
		default:
			writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		}
		return
	}
	st, _ := s.m.Get(c.ID)
	writeJSON(w, http.StatusCreated, st)
}

func (s *server) list(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.m.List())
}

func (s *server) get(w http.ResponseWriter, r *http.Request) {
	st, ok := s.m.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{"no such campaign"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := s.m.Result(id)
	if err != nil {
		if _, ok := s.m.Get(id); !ok {
			writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
			return
		}
		writeJSON(w, http.StatusConflict, errorBody{err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, res)
}

// stream serves the campaign's job events as JSONL: full history first,
// then live events until the campaign reaches a terminal state or the
// client goes away.
func (s *server) stream(w http.ResponseWriter, r *http.Request) {
	history, ch, err := s.m.Subscribe(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	flusher, _ := w.(http.Flusher)
	for _, line := range history {
		fmt.Fprintln(w, line)
	}
	if flusher != nil {
		flusher.Flush()
	}
	if ch == nil {
		return
	}
	for {
		select {
		case line, ok := <-ch:
			if !ok {
				return
			}
			fmt.Fprintln(w, line)
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// progressEntry mirrors the -pprof server's /progress rows, keyed
// "<campaign>/<run>".
type progressEntry struct {
	Cycles uint64   `json:"cycles"`
	Events uint64   `json:"events"`
	Shards []uint64 `json:"shards,omitempty"`
	Done   bool     `json:"done"`
}

func (s *server) progress(w http.ResponseWriter, _ *http.Request) {
	out := make(map[string]progressEntry)
	for id, live := range s.m.Lives() {
		for _, run := range live.Runs() {
			if sm := run.Latest(); sm != nil {
				out[id+"/"+run.Label()] = progressEntry{
					Cycles: sm.Cycles, Events: sm.Events, Shards: sm.Shards, Done: sm.Done,
				}
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) metrics(w http.ResponseWriter, _ *http.Request) {
	out := make(map[string]obs.Snapshot)
	for id, live := range s.m.Lives() {
		for _, run := range live.Runs() {
			if sm := run.Latest(); sm != nil {
				out[id+"/"+run.Label()] = sm.Metrics
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) healthz(w http.ResponseWriter, _ *http.Request) {
	if s.m.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8723", "listen address (port 0 picks one; the resolved address prints to stderr)")
		data       = flag.String("data", "simd-data", "campaign state directory ('' runs volatile: nothing survives a restart)")
		maxActive  = flag.Int("max-active", 1, "concurrently running campaigns")
		queue      = flag.Int("queue", 8, "campaigns allowed to wait for a slot")
		maxTenants = flag.Int("max-tenants", 4, "tenants with unfinished campaigns")
		tenantJobs = flag.Int("tenant-jobs", 512, "outstanding jobs allowed per tenant")
		jobTimeout = flag.Duration("job-timeout", 0, "wall-clock bound per job; timed-out jobs are quarantined as stuck (0 disables)")
		retries    = flag.Int("retries", 1, "re-runs of a failed (non-stuck) job before its failure record is final")
		ckptEvery  = flag.Int("checkpoint-every", 8, "journal appends between checkpoint compactions")
		parallel   = flag.Int("parallel", 0, "worker budget per campaign (0 = one per core)")
		shards     = flag.Int("shards", 0, "machine-core shard width for simulation jobs")
		drainWait  = flag.Duration("drain-timeout", 2*time.Minute, "how long SIGTERM waits for in-flight jobs before exiting anyway")
		traceDir   = flag.String("trace-dir", "", "directory the registered \"trace\" app replays (overrides the default)")
	)
	flag.Parse()
	if *traceDir != "" {
		apps.SetTraceDir(*traceDir)
	}

	m, err := campaign.Open(campaign.Config{
		Root: *data, MaxActive: *maxActive, QueueDepth: *queue,
		MaxTenants: *maxTenants, TenantJobs: *tenantJobs,
		JobRetries: *retries, JobTimeout: *jobTimeout,
		CheckpointEvery: *ckptEvery, Parallel: *parallel, Shards: *shards,
	})
	if err != nil {
		cli.Fatalf(tool, "%v", err)
	}

	ln, err := cli.Listen(*addr)
	if err != nil {
		cli.Fatalf(tool, "%v", err)
	}
	srv := &http.Server{Handler: (&server{m: m}).routes()}
	fmt.Fprintf(os.Stderr, "%s: serving campaigns on http://%s (data %q)\n", tool, ln.Addr(), *data)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "%s: %s: draining (finishing in-flight jobs, checkpointing)\n", tool, sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := m.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "%s: drain: %v\n", tool, err)
		}
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
		fmt.Fprintf(os.Stderr, "%s: drained, exiting\n", tool)
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			cli.Fatalf(tool, "serve: %v", err)
		}
	}
}
