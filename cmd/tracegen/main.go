// Command tracegen generates a reference trace for one of the paper's
// applications and writes it in the binary trace format, or inspects an
// existing trace — the paper's "Tango can be used to generate
// multiprocessor reference traces" mode.
//
//	tracegen -app LU -procs 32 -o lu32.trace
//	tracegen -info lu32.trace
//
// Replay a trace with:
//
//	dashsim -trace lu32.trace -scheme cv
package main

import (
	"flag"
	"fmt"
	"os"

	"dircoh/internal/apps"
	"dircoh/internal/trace"
)

func main() {
	var (
		app   = flag.String("app", "LU", "application to trace")
		procs = flag.Int("procs", 32, "processors")
		out   = flag.String("o", "", "output trace file")
		info  = flag.String("info", "", "print characteristics of an existing trace file")
	)
	flag.Parse()

	if *info != "" {
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		wl, err := trace.Read(f)
		if err != nil {
			fatal(err)
		}
		c := wl.Characterize()
		fmt.Printf("%s: %d processors\n", wl.Name, wl.Procs())
		fmt.Printf("shared refs: %d (%d reads, %d writes), sync ops: %d, shared data: %.1f KB\n",
			c.SharedRefs, c.SharedReads, c.SharedWrites, c.SyncOps, float64(c.SharedBytes)/1024)
		return
	}

	if *out == "" {
		fatal(fmt.Errorf("-o output file required (or use -info)"))
	}
	wl := apps.ByName(*app, *procs)
	if wl == nil {
		fatal(fmt.Errorf("unknown app %q", *app))
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := trace.Write(f, wl); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st, _ := os.Stat(*out)
	c := wl.Characterize()
	fmt.Printf("wrote %s: %d refs from %d procs, %d bytes (%.2f bytes/ref)\n",
		*out, c.SharedRefs+c.SyncOps, wl.Procs(), st.Size(),
		float64(st.Size())/float64(c.SharedRefs+c.SyncOps))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
