// Command tracegen generates a reference trace for one of the paper's
// applications and writes it in the binary trace format, or inspects an
// existing trace — the paper's "Tango can be used to generate
// multiprocessor reference traces" mode.
//
//	tracegen -app LU -procs 32 -o lu32.trace
//	tracegen -info lu32.trace
//
// Replay a trace with:
//
//	dashsim -trace lu32.trace -scheme cv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dircoh/internal/apps"
	"dircoh/internal/cli"
	"dircoh/internal/trace"
)

const tool = "tracegen"

func main() {
	var (
		app   = flag.String("app", "LU", "application to trace: "+strings.Join(apps.All(), ", "))
		procs = flag.Int("procs", 32, "processors")
		out   = flag.String("o", "", "output trace file")
		info  = flag.String("info", "", "print characteristics of an existing trace file")
	)
	obsFlags := cli.NewObs(tool)
	flag.Parse()
	cli.Check(tool, obsFlags.Start())
	defer obsFlags.Stop()

	if *info != "" {
		f, err := os.Open(*info)
		if err != nil {
			cli.Fatalf(tool, "%v", err)
		}
		defer f.Close()
		wl, err := trace.Read(f)
		if err != nil {
			cli.Fatalf(tool, "%v", err)
		}
		c := wl.Characterize()
		fmt.Printf("%s: %d processors\n", wl.Name, wl.Procs())
		fmt.Printf("shared refs: %d (%d reads, %d writes), sync ops: %d, shared data: %.1f KB\n",
			c.SharedRefs, c.SharedReads, c.SharedWrites, c.SyncOps, float64(c.SharedBytes)/1024)
		return
	}

	if *out == "" {
		cli.Usagef(tool, "-o output file required (or use -info)")
	}
	build, err := apps.Lookup(*app)
	if err != nil {
		cli.Usagef(tool, "%v", err)
	}
	wl := build(*procs)
	f, err := os.Create(*out)
	if err != nil {
		cli.Fatalf(tool, "%v", err)
	}
	if err := trace.Write(f, wl); err != nil {
		f.Close()
		cli.Fatalf(tool, "%v", err)
	}
	if err := f.Close(); err != nil {
		cli.Fatalf(tool, "%v", err)
	}
	st, _ := os.Stat(*out)
	c := wl.Characterize()
	fmt.Printf("wrote %s: %d refs from %d procs, %d bytes (%.2f bytes/ref)\n",
		*out, c.SharedRefs+c.SyncOps, wl.Procs(), st.Size(),
		float64(st.Size())/float64(c.SharedRefs+c.SyncOps))
}
