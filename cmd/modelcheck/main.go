// Command modelcheck exhaustively explores the coherence protocol's
// state space on tiny geometries: every interleaving of a bounded number
// of processor operations and message deliveries, per directory scheme,
// with the same invariants the runtime checker enforces plus
// deadlock-freedom at every quiescent state. The model (internal/model)
// is a transliteration of internal/machine's memory path — including the
// stale-message recovery guards — validated by differential and
// conformance tests, so a clean exhaustive run is evidence about the
// protocol as implemented, not about an idealized abstraction.
//
// A violation prints the minimal (breadth-first shortest) action trace
// plus a protostress replay line that hammers the same code path
// dynamically. With -bug the command becomes a self-test: it re-injects
// one fixed protocol defect from the repo's history and exits zero only
// if the exploration finds a counterexample.
//
//	modelcheck                                # all schemes, 2 clusters, fifo
//	modelcheck -clusters 3 -blocks 2 -ops 2   # bigger geometry
//	modelcheck -order any -budgets 0,2        # adversarial reordering
//	modelcheck -bug stale-readreq -order any -budgets 0,2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dircoh/internal/cli"
	"dircoh/internal/core"
	"dircoh/internal/model"
	"dircoh/internal/replay"
)

const tool = "modelcheck"

// options is everything one checking run needs; tests drive run with a
// literal instead of flags.
type options struct {
	clusters, blocks int
	ops              int
	budgets          []int // nil = ops for every cluster
	schemes          []string
	sparseEntries    int
	sparseAssoc      int
	order            model.Order
	bug              model.Bug
	maxStates        int
	noSym            bool
	verbose          bool
}

// replayLine maps a model-level finding onto the protostress knobs that
// exercise the same code path dynamically: the recall bug stresses the
// replacement-recall path, the stale-message bugs need the fault that
// perturbs message timing, and a liveness finding arms the wedge
// watchdog.
func replayLine(o options, rule string) replay.Line {
	fault := "none"
	switch o.bug {
	case model.BugRecallGateRace:
		fault = "skip-recall"
	case model.BugStaleReadReq, model.BugStaleSharingWB, model.BugStaleWritebackReq:
		fault = "drop-inval"
	}
	return replay.Line{
		Trials: 64, Seed: 1, Procs: []int{o.clusters}, Refs: 200,
		Blocks: o.blocks, Fault: fault, Wedge: rule == "liveness",
	}
}

// run executes the checking campaign and returns the exit code: 0 for a
// clean exhaustive pass (or a caught re-injected bug), 1 for a genuine
// violation (or a bug the exploration missed), 2 for a configuration
// error or a truncated, and therefore inconclusive, clean run.
func run(o options, w io.Writer) int {
	found := false
	truncated := false
	for _, name := range o.schemes {
		f, err := core.Parse(name)
		if err != nil {
			fmt.Fprintf(w, "%s: %v\n", tool, err)
			return 2
		}
		m, err := model.New(model.Config{
			Clusters: o.clusters, Blocks: o.blocks, Scheme: f,
			Ops: o.ops, Budgets: o.budgets,
			SparseEntries: o.sparseEntries, SparseAssoc: o.sparseAssoc,
			Order: o.order, Bug: o.bug, NoSymmetry: o.noSym,
		})
		if err != nil {
			fmt.Fprintf(w, "%s: scheme %s: %v\n", tool, name, err)
			return 2
		}
		res := m.Explore(o.maxStates)
		status := "clean"
		switch {
		case res.Counterexample != nil:
			status = "VIOLATION"
			found = true
		case res.Truncated:
			status = "truncated"
			truncated = true
		}
		fmt.Fprintf(w, "%-8s %-9s states=%d transitions=%d depth=%d\n",
			m.Scheme(), status, res.States, res.Transitions, res.Depth)
		if ce := res.Counterexample; ce != nil {
			fmt.Fprintf(w, "  rule %s: %s", ce.Rule, ce.Detail)
			if ce.Cluster >= 0 {
				fmt.Fprintf(w, " (cluster %d, block %d)", ce.Cluster, ce.Block)
			}
			fmt.Fprintln(w)
			for _, step := range ce.Trace {
				fmt.Fprintf(w, "    %s\n", step)
			}
			fmt.Fprintf(w, "  replay: %s\n", replayLine(o, ce.Rule))
		}
	}
	if o.bug != model.BugNone {
		if !found {
			fmt.Fprintf(w, "re-injected bug %s went undetected\n", o.bug)
			return 1
		}
		fmt.Fprintf(w, "modelcheck caught re-injected bug %s\n", o.bug)
		return 0
	}
	switch {
	case found:
		fmt.Fprintln(w, "protocol invariant violation on the unmutated protocol")
		return 1
	case truncated:
		fmt.Fprintln(w, "inconclusive: state bound hit before exhausting; raise -max-states")
		return 2
	}
	fmt.Fprintln(w, "clean: every reachable state satisfies every invariant")
	return 0
}

func parseInts(flagName, s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad %s entry %q", flagName, f)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		clusters      = flag.Int("clusters", 2, "clusters in the modeled machine (2..4)")
		blocks        = flag.Int("blocks", 1, "shared blocks (1..4), homed round-robin")
		ops           = flag.Int("ops", 2, "spontaneous operations per cluster")
		budgetsStr    = flag.String("budgets", "", "comma list of per-cluster operation budgets, overriding -ops")
		schemeStr     = flag.String("scheme", "all", "directory scheme name or comma list; 'all' checks every registered scheme")
		sparseEntries = flag.Int("sparse-entries", 0, "model a sparse directory with this many entries per home (0 = full map)")
		sparseAssoc   = flag.Int("sparse-assoc", 1, "sparse directory associativity")
		orderStr      = flag.String("order", "fifo", "network delivery order explored: fifo (per-pair channels) or any (adversarial reordering)")
		bugStr        = flag.String("bug", "none", "re-inject a fixed historical protocol bug (none, recall-gate-race, stale-readreq, stale-sharingwb, stale-writebackreq); the exploration must catch it")
		maxStates     = flag.Int("max-states", model.DefaultMaxStates, "truncate the search at this many distinct states")
		noSym         = flag.Bool("no-symmetry", false, "disable cluster-symmetry reduction")
		verbose       = flag.Bool("v", false, "reserved; accepted for replay-line compatibility")
	)
	flag.Parse()

	order, err := model.ParseOrder(*orderStr)
	if err != nil {
		cli.Usagef(tool, "%v", err)
	}
	bug, err := model.ParseBug(*bugStr)
	if err != nil {
		cli.Usagef(tool, "%v", err)
	}
	var budgets []int
	if *budgetsStr != "" {
		if budgets, err = parseInts("-budgets", *budgetsStr); err != nil {
			cli.Usagef(tool, "%v", err)
		}
	}
	schemes := core.SchemeNames()
	if *schemeStr != "all" {
		schemes = strings.Split(*schemeStr, ",")
	}

	o := options{
		clusters: *clusters, blocks: *blocks, ops: *ops, budgets: budgets,
		schemes: schemes, sparseEntries: *sparseEntries, sparseAssoc: *sparseAssoc,
		order: order, bug: bug, maxStates: *maxStates, noSym: *noSym, verbose: *verbose,
	}
	os.Exit(run(o, os.Stdout))
}
