package main

import (
	"strings"
	"testing"

	"dircoh/internal/core"
	"dircoh/internal/model"
	"dircoh/internal/replay"
)

func TestRunCleanAllSchemes(t *testing.T) {
	var out strings.Builder
	o := options{
		clusters: 2, blocks: 1, ops: 2,
		schemes: core.SchemeNames(), sparseAssoc: 1,
		maxStates: model.DefaultMaxStates,
	}
	if code := run(o, &out); code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "clean: every reachable state") {
		t.Fatalf("missing clean verdict:\n%s", out.String())
	}
}

func TestRunCatchesReinjectedBug(t *testing.T) {
	var out strings.Builder
	o := options{
		clusters: 2, blocks: 1, budgets: []int{0, 2},
		schemes: []string{"full"}, sparseAssoc: 1,
		order: model.OrderAny, bug: model.BugStaleReadReq,
		maxStates: model.DefaultMaxStates,
	}
	if code := run(o, &out); code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "caught re-injected bug stale-readreq") {
		t.Fatalf("missing caught verdict:\n%s", s)
	}
	// The printed replay line must load back through the pinned grammar.
	i := strings.Index(s, "replay: ")
	if i < 0 {
		t.Fatalf("no replay line:\n%s", s)
	}
	line := strings.TrimSpace(s[i+len("replay: ") : i+strings.IndexByte(s[i:], '\n')])
	l, err := replay.Parse(line)
	if err != nil {
		t.Fatalf("replay line %q does not parse: %v", line, err)
	}
	if l.Fault != "drop-inval" {
		t.Fatalf("replay fault = %q, want drop-inval", l.Fault)
	}
}

func TestRunBugUndetectedFails(t *testing.T) {
	// Under FIFO delivery the stale-ReadReq window never opens, so the
	// self-test must report the miss and exit non-zero.
	var out strings.Builder
	o := options{
		clusters: 2, blocks: 1, ops: 2,
		schemes: []string{"full"}, sparseAssoc: 1,
		bug:       model.BugStaleReadReq,
		maxStates: model.DefaultMaxStates,
	}
	if code := run(o, &out); code != 1 {
		t.Fatalf("exit %d, want 1; output:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "went undetected") {
		t.Fatalf("missing undetected verdict:\n%s", out.String())
	}
}

func TestRunUnknownScheme(t *testing.T) {
	var out strings.Builder
	o := options{
		clusters: 2, blocks: 1, ops: 1,
		schemes: []string{"no-such-scheme"}, sparseAssoc: 1,
		maxStates: model.DefaultMaxStates,
	}
	if code := run(o, &out); code != 2 {
		t.Fatalf("exit %d, want 2; output:\n%s", code, out.String())
	}
}

func TestReplayLinesParse(t *testing.T) {
	for _, bug := range []model.Bug{
		model.BugNone, model.BugRecallGateRace, model.BugStaleReadReq,
		model.BugStaleSharingWB, model.BugStaleWritebackReq,
	} {
		o := options{clusters: 3, blocks: 2, bug: bug}
		for _, rule := range []string{"protocol", "liveness"} {
			l := replayLine(o, rule)
			if _, err := replay.Parse(l.String()); err != nil {
				t.Errorf("bug %v rule %s: line %q does not parse: %v", bug, rule, l, err)
			}
		}
	}
}
