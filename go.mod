module dircoh

go 1.22
